"""Event scheduler: the heart of the discrete-event kernel.

A simulation is a single scheduler plus callbacks. Events are ordered by
(time, sequence number) so that simultaneous events fire in the order
they were scheduled, which keeps runs exactly reproducible for a given
random seed.

Two interchangeable backends implement that contract
(:func:`create_scheduler` picks one from ``SRM_SCHED_BACKEND``; both
execute any sequence of schedule/cancel/run calls in the identical
(time, seq) order, so seeded traces are byte-identical across backends):

* :class:`EventScheduler` — a binary heap of ``(time, seq, event)``
  tuples with lazy deletion: a cancelled event stays in the heap and is
  skipped when popped, and the heap is *compacted* when dead entries
  become the majority. Tuple entries keep heap comparisons at C speed;
  compaction keeps long cancel-heavy sessions from paying a log-factor
  on dead weight.
* :class:`CalendarScheduler` — a calendar queue (hierarchical time
  buckets) purpose-built for SRM's timer-dominated workload: O(1)
  schedule, **O(1) physical cancellation** (the entry is removed from
  its bucket immediately via swap-remove, so the 90%+ of suppression
  timers that never fire are never scanned, never compacted, never
  comparison-sorted), and bucket width/count auto-resized from the live
  timer population. Each entry is tagged with its integer bucket *day*
  at insert, so drain eligibility is an exact integer compare — no
  float boundary arithmetic that could reorder events across backends.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, ClassVar, List, Optional, Tuple, Union

from repro.sim import perf

#: Compact only when the heap holds more cancelled entries than this
#: *and* they are the majority — small heaps never pay a rebuild.
COMPACT_MIN_CANCELLED = 256

#: A same-instant tie batch as handed to a :data:`TiePermuter`: the
#: ``(seq, event)`` pairs of every pending event at one simulated
#: instant, in contract (seq-ascending) order. The event element is
#: backend-specific (:class:`Event` or :class:`CalendarEvent`).
TieBatch = List[Tuple[int, Any]]

#: Drain-order hook for the tie-order race detector
#: (``repro.lint.races``): receives a seq-sorted same-instant batch and
#: returns the order to actually fire it in. Production runs never
#: install one — the contract order *is* (time, seq) — the detector
#: uses it to replay a scenario under permuted drain orders and prove
#: the trace does not depend on them.
TiePermuter = Callable[[TieBatch], TieBatch]


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice, ...)."""


class Event:
    """A handle for a scheduled callback.

    Events are created by :meth:`EventScheduler.schedule` and may be
    cancelled. A cancelled event stays in the heap but is skipped when
    popped (lazy deletion), which makes cancellation O(1); the owning
    scheduler compacts the heap when cancelled entries dominate.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sched")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...],
                 sched: Optional["EventScheduler"] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sched = sched

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sched is not None:
            self._sched._note_cancelled(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.4f} {name} {state}>"


class EventScheduler:
    """A discrete-event scheduler with a monotonic simulated clock.

    Typical use::

        sched = EventScheduler()
        sched.schedule(1.5, node.receive, packet)
        sched.run(until=100.0)
    """

    backend: ClassVar[str] = "heap"

    __slots__ = ("_heap", "_next_seq", "_now", "_running",
                 "_events_processed", "_cancelled_in_heap",
                 "_heap_rebuilds", "_tie_permuter", "perf")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._next_seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        #: Cancelled events still sitting in the heap (lazy deletion).
        self._cancelled_in_heap = 0
        self._heap_rebuilds = 0
        self._tie_permuter: Optional[TiePermuter] = None
        self.perf = perf.GLOBAL

    def set_tie_permuter(self, permuter: Optional[TiePermuter]) -> None:
        """Install (or clear) a same-instant drain-order hook.

        With a permuter installed, :meth:`run` switches to a drain loop
        that gathers each same-time tie group off the heap before firing
        any member and lets the hook choose the firing order. Only the
        race detector does this; ``None`` restores the contract order.
        """
        self._tie_permuter = permuter

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_processed

    @property
    def heap_rebuilds(self) -> int:
        """Number of compactions performed (for instrumentation)."""
        return self._heap_rebuilds

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events. O(1)."""
        return len(self._heap) - self._cancelled_in_heap

    def heap_size(self) -> int:
        """Total heap entries, including cancelled ones awaiting removal."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` units from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} units in the past (now={self._now})")
        time = self._now + delay
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback, args, self)
        heapq.heappush(self._heap, (time, seq, event))
        self.perf.events_scheduled += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, clock already at {self._now}")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback, args, self)
        heapq.heappush(self._heap, (time, seq, event))
        self.perf.events_scheduled += 1
        return event

    def schedule_many(self, delays: List[float],
                      callback: Callable[[], Any]) -> List[Event]:
        """Arm one event per delay in a single call, in list order.

        Equivalent to calling :meth:`schedule` once per delay — same
        sequence numbers, same (time, seq) execution order, same
        counters — but in one Python frame with the heap in locals.
        """
        now = self._now
        seq = self._next_seq
        heap = self._heap
        push = heapq.heappush
        out: List[Event] = []
        append_out = out.append
        for delay in delays:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule {delay} units in the past (now={now})")
            time = now + delay
            event = Event(time, seq, callback, (), self)
            push(heap, (time, seq, event))
            seq += 1
            append_out(event)
        self._next_seq = seq
        self.perf.events_scheduled += len(out)
        return out

    def run_plan(self, base: float, entries: Tuple[Any, ...],
                 deliver_one: Callable[..., Any],
                 deliver_run: Callable[..., Any],
                 arrivals: List[Any]) -> None:
        """Schedule one delivery event per plan entry, in one frame.

        ``entries`` are (delay, hops, target) delivery-plan rows; each
        becomes an event at ``base + delay`` calling ``deliver_one`` for
        scalar targets or ``deliver_run`` for tuple runs, with the
        positionally matching packet from ``arrivals``. Equivalent to a
        :meth:`schedule_at` per row — same seq order, same counters.
        """
        seq = self._next_seq
        heap = self._heap
        push = heapq.heappush
        count = 0
        for (delay, _, target), arrival in zip(entries, arrivals):
            time = base + delay
            event = Event(
                time, seq,
                deliver_run if type(target) is tuple else deliver_one,
                (target, arrival), self)
            push(heap, (time, seq, event))
            seq += 1
            count += 1
        self._next_seq = seq
        self.perf.events_scheduled += count

    def rearm_many(self, events: List[Event], delays: List[float]) -> None:
        """Re-arm a batch of this scheduler's handles, one per delay.

        Pending handles are cancelled (lazily) and replaced; the list is
        updated *in place* with the fresh handles, so callers hold valid
        pending events afterwards on either backend (the calendar moves
        the same objects; the heap must reallocate because its entries
        are immutable tuples).
        """
        now = self._now
        seq = self._next_seq
        heap = self._heap
        push = heapq.heappush
        counters = self.perf
        dead = 0
        for i, delay in enumerate(delays):
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule {delay} units in the past (now={now})")
            old = events[i]
            if not old.cancelled:
                old.cancelled = True
                if old._sched is not None:
                    dead += 1
            time = now + delay
            event = Event(time, seq, old.callback, old.args, self)
            push(heap, (time, seq, event))
            seq += 1
            events[i] = event
        self._next_seq = seq
        self._cancelled_in_heap += dead
        counters.events_cancelled += dead
        counters.events_scheduled += len(delays)
        cancelled = self._cancelled_in_heap
        if (cancelled >= COMPACT_MIN_CANCELLED
                and cancelled * 2 > len(heap)):
            self._compact()

    def cancel_many(self, events: List[Event]) -> None:
        """Cancel a batch of this scheduler's handles in one frame.

        Same lazy-deletion semantics and counters as individual
        :meth:`Event.cancel` calls; the compaction check runs once at
        the end of the batch instead of per cancel.
        """
        dead = 0
        for event in events:
            if event.cancelled:
                continue
            event.cancelled = True
            if event._sched is not None:
                dead += 1  # fired handles don't count, as with cancel()
        self._cancelled_in_heap += dead
        self.perf.events_cancelled += dead
        cancelled = self._cancelled_in_heap
        if (cancelled >= COMPACT_MIN_CANCELLED
                and cancelled * 2 > len(self._heap)):
            self._compact()

    def _note_cancelled(self, event: Event) -> None:
        """Bookkeeping for a cancel; compacts when dead entries dominate."""
        self._cancelled_in_heap += 1
        self.perf.events_cancelled += 1
        cancelled = self._cancelled_in_heap
        if (cancelled >= COMPACT_MIN_CANCELLED
                and cancelled * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, preserving order.

        Mutates the heap list in place so a concurrently-executing
        :meth:`run` loop (which holds a reference to it) sees the
        compacted heap.
        """
        heap = self._heap
        if len(heap) > self.perf.heap_peak:
            self.perf.heap_peak = len(heap)
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self._heap_rebuilds += 1
        self.perf.heap_rebuilds += 1

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run events in time order.

        Stops when the heap empties, when the clock would pass ``until``
        (the clock is then advanced to exactly ``until``), or after
        ``max_events`` events. Returns the number of events executed by
        this call.
        """
        if self._tie_permuter is not None:
            return self._run_permuted(until, max_events)
        if self._running:
            raise SimulationError("scheduler is already running")
        self._running = True
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        counters = self.perf
        if len(heap) > counters.heap_peak:
            counters.heap_peak = len(heap)
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                time, _, event = heap[0]
                if event.cancelled:
                    pop(heap)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and time > until:
                    break
                pop(heap)
                # A fired event is out of the heap: a late cancel() on its
                # handle must not touch the in-heap cancellation counter.
                event._sched = None
                self._now = time
                event.callback(*event.args)
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            self._events_processed += executed
            counters.events_executed += executed
        return executed

    def _run_permuted(self, until: Optional[float],
                      max_events: Optional[int]) -> int:
        """The :meth:`run` drain with a tie permuter installed.

        Pops every entry sharing the next pending time off the heap
        before firing any of them (the lazy-deletion pop only exposes
        ties one at a time), hands the seq-sorted batch to the permuter,
        and fires in the order it returns. A batch member cancelled by
        an earlier member is skipped, exactly as in the contract drain;
        events a callback schedules at the same instant get fresh seqs
        and form the *next* batch, matching the calendar backend's
        tie-group semantics. Cold path: only the race detector runs it.
        """
        permuter = self._tie_permuter
        assert permuter is not None
        if self._running:
            raise SimulationError("scheduler is already running")
        self._running = True
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        counters = self.perf
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                time, _, head = heap[0]
                if head.cancelled:
                    pop(heap)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and time > until:
                    break
                batch: TieBatch = []
                while heap and heap[0][0] == time:
                    _, _, event = pop(heap)
                    if event.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    # Out of the heap: late cancels must not touch the
                    # in-heap cancellation counter.
                    event._sched = None
                    batch.append((event.seq, event))
                order = permuter(batch) if len(batch) > 1 else batch
                for position, (_, event) in enumerate(order):
                    if max_events is not None and executed >= max_events:
                        # Unfired members go back on the heap so a later
                        # run() call resumes without losing them.
                        for _, rest in order[position:]:
                            if not rest.cancelled:
                                rest._sched = self
                                heapq.heappush(
                                    heap, (rest.time, rest.seq, rest))
                        break
                    if event.cancelled:
                        continue
                    self._now = time
                    event.callback(*event.args)
                    executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            self._events_processed += executed
            counters.events_executed += executed
        return executed

    def step(self) -> bool:
        """Execute the single next pending event. Returns False if none."""
        heap = self._heap
        while heap:
            time, _, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            event._sched = None
            self._now = time
            event.callback(*event.args)
            self._events_processed += 1
            self.perf.events_executed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        if heap:
            return heap[0][0]
        return None

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running scheduler")
        for _, _, event in self._heap:
            event._sched = None  # late cancels must not corrupt counters
        self._heap.clear()
        self._cancelled_in_heap = 0
        self._now = 0.0
        self._events_processed = 0


#: Smallest bucket count the calendar backend will use; resizing never
#: shrinks below this, so tiny simulations skip resize churn entirely.
MIN_BUCKETS = 32

#: Resizing recomputes bucket width as ``2 * span / live`` so the live
#: population spreads ~2 entries per day and one calendar year covers the
#: whole span (bucket count stays within 2x of the live count). Clamped
#: so a degenerate span can never produce a zero/denormal width.
MIN_BUCKET_WIDTH = 1e-9

#: Bucket-count ceiling. Beyond this, average occupancy grows instead of
#: the table: a rebuild allocates ``nbuckets`` fresh lists and re-tags
#: every live event, so letting the table chase a 10^5+ event population
#: (e.g. a bulk pre-scheduled run) costs more in rebuild passes and
#: allocation than the slightly longer bucket scans it avoids.
MAX_BUCKETS = 1 << 16


class CalendarEvent:
    """A handle for a callback scheduled on the calendar backend.

    Unlike the heap backend's lazy deletion, :meth:`cancel` *physically*
    removes the entry from its bucket in O(1) (swap with the bucket's
    last entry), so a cancelled timer costs nothing afterwards: it is
    never scanned on drain and never triggers a compaction pass.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "_day", "_index", "_bucket", "_sched")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...],
                 day: int, sched: "CalendarScheduler") -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: ``int(time * inv_width)`` under the owning scheduler's current
        #: width; drain eligibility is the exact compare ``_day == day``.
        self._day = day
        self._index = 0
        self._bucket: Optional[List["CalendarEvent"]] = None
        self._sched = sched

    def cancel(self) -> None:
        """Remove the event from its bucket. Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        bucket = self._bucket
        if bucket is None:
            return  # already fired (or scheduler was reset): nothing to undo
        self._bucket = None
        index = self._index
        last = bucket.pop()
        if last is not self:
            bucket[index] = last
            last._index = index
        sched = self._sched
        sched._live -= 1
        sched.perf.events_cancelled += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<CalendarEvent t={self.time:.4f} {name} {state}>"


class CalendarScheduler:
    """A calendar-queue scheduler for timer-dominated workloads.

    Pending events live in ``nbuckets`` bucket lists indexed by
    ``day & (nbuckets - 1)`` where ``day = int(time / width)``. Buckets
    are unordered bags: schedule appends (O(1)), cancel swap-removes
    (O(1), physical), and draining min-scans the current day's bucket —
    with width sized so a day holds ~2 live entries, the scan is O(1)
    amortized. Bucket count doubles/halves with the live population and
    width is recomputed from the observed interval span at each resize
    (``bucket_resizes`` / ``bucket_scan_len`` perf counters track both).

    Execution order is exactly (time, seq), identical to
    :class:`EventScheduler`: day tags are computed with the same
    monotonic ``int(time * inv_width)`` at insert and rebuild, so an
    earlier event can never land in a later day, and ties inside a day
    are broken by the scan's (time, seq) minimum.
    """

    backend: ClassVar[str] = "calendar"

    __slots__ = ("now", "events_processed", "_buckets", "_nbuckets",
                 "_mask", "_width", "_inv_width", "_day", "_live",
                 "_gap_ewma", "_next_seq", "_running", "_tie_permuter",
                 "perf")

    def __init__(self, width: float = 1.0,
                 nbuckets: int = MIN_BUCKETS) -> None:
        n = MIN_BUCKETS
        while n < nbuckets:
            n <<= 1
        #: Current simulated time (plain attribute: this is the kernel's
        #: hottest read, via ``Agent.now``).
        self.now = 0.0
        self.events_processed = 0
        self._buckets: List[List[CalendarEvent]] = [[] for _ in range(n)]
        self._nbuckets = n
        self._mask = n - 1
        self._width = width
        self._inv_width = 1.0 / width
        self._day = 0
        self._live = 0
        #: EWMA of the gap between consecutive *executed* event times —
        #: the observed timer-interval distribution that width adaptation
        #: targets. 0.0 until the first run() samples it.
        self._gap_ewma = 0.0
        self._next_seq = 0
        self._running = False
        self._tie_permuter: Optional[TiePermuter] = None
        self.perf = perf.GLOBAL

    def set_tie_permuter(self, permuter: Optional[TiePermuter]) -> None:
        """Install (or clear) a same-instant drain-order hook.

        The calendar's drain already collects each same-instant group as
        one seq-sorted batch; with a permuter installed that batch fires
        in the hook's order instead. Only the race detector does this;
        ``None`` restores the contract order.
        """
        self._tie_permuter = permuter

    @property
    def heap_rebuilds(self) -> int:
        """Heap-backend compatibility: the calendar never compacts."""
        return 0

    def bucket_count(self) -> int:
        """Current number of buckets (power of two; instrumentation)."""
        return self._nbuckets

    @property
    def width(self) -> float:
        """Current bucket width in simulated seconds (instrumentation)."""
        return self._width

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events. O(1)."""
        return self._live

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> CalendarEvent:
        """Schedule ``callback(*args)`` to run ``delay`` units from now.

        The insert body is duplicated with :meth:`schedule_at` (rather
        than shared through a helper) deliberately: these two are the
        kernel's hottest allocation sites and the extra frame shows up
        in every profile.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} units in the past (now={self.now})")
        time = self.now + delay
        seq = self._next_seq
        self._next_seq = seq + 1
        day = int(time * self._inv_width)
        event = object.__new__(CalendarEvent)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._day = day
        event._sched = self
        bucket = self._buckets[day & self._mask]
        event._index = len(bucket)
        event._bucket = bucket
        bucket.append(event)
        live = self._live + 1
        self._live = live
        if day < self._day:
            self._day = day  # the new event is now the earliest pending day
        self.perf.events_scheduled += 1
        if live > (self._nbuckets << 1) and self._nbuckets < MAX_BUCKETS:
            self._rebuild(min(self._nbuckets << 4, MAX_BUCKETS))
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> CalendarEvent:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, clock already at {self.now}")
        seq = self._next_seq
        self._next_seq = seq + 1
        day = int(time * self._inv_width)
        event = object.__new__(CalendarEvent)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._day = day
        event._sched = self
        bucket = self._buckets[day & self._mask]
        event._index = len(bucket)
        event._bucket = bucket
        bucket.append(event)
        live = self._live + 1
        self._live = live
        if day < self._day:
            self._day = day  # the new event is now the earliest pending day
        self.perf.events_scheduled += 1
        if live > (self._nbuckets << 1) and self._nbuckets < MAX_BUCKETS:
            self._rebuild(min(self._nbuckets << 4, MAX_BUCKETS))
        return event

    def run_plan(self, base: float, entries: Tuple[Any, ...],
                 deliver_one: Callable[..., Any],
                 deliver_run: Callable[..., Any],
                 arrivals: List[Any]) -> None:
        """Schedule one delivery event per plan entry, in one frame.

        ``entries`` are (delay, hops, target) delivery-plan rows; each
        becomes an event at ``base + delay`` calling ``deliver_one`` for
        scalar targets or ``deliver_run`` for tuple runs, with the
        positionally matching packet from ``arrivals``. Equivalent to a
        :meth:`schedule_at` per row — same seq order, same counters.

        Events are built by direct slot assignment (``object.__new__``)
        rather than the ``CalendarEvent`` constructor: this loop is the
        single biggest event producer in delivery-heavy runs and the
        ``__init__`` frame per event is a measurable share of it.
        """
        seq = self._next_seq
        inv = self._inv_width
        buckets = self._buckets
        mask = self._mask
        min_day = self._day
        count = 0
        new = object.__new__
        for (delay, _, target), arrival in zip(entries, arrivals):
            time = base + delay
            day = int(time * inv)
            event = new(CalendarEvent)
            event.time = time
            event.seq = seq
            event.callback = (deliver_run if type(target) is tuple
                              else deliver_one)
            event.args = (target, arrival)
            event.cancelled = False
            event._day = day
            event._sched = self
            seq += 1
            bucket = buckets[day & mask]
            event._index = len(bucket)
            event._bucket = bucket
            bucket.append(event)
            if day < min_day:
                min_day = day
            count += 1
        self._next_seq = seq
        self._day = min_day
        live = self._live + count
        self._live = live
        self.perf.events_scheduled += count
        target_n = self._nbuckets
        while live > (target_n << 1) and target_n < MAX_BUCKETS:
            target_n <<= 4
        if target_n > MAX_BUCKETS:
            target_n = MAX_BUCKETS
        if target_n != self._nbuckets:
            self._rebuild(target_n)

    def reschedule_event(self, event: CalendarEvent,
                         delay: float) -> CalendarEvent:
        """Move a pending event to fire ``delay`` from now, in place.

        Exactly equivalent to ``event.cancel()`` followed by
        :meth:`schedule` with the same callback — same perf counters,
        same fresh sequence number, same (time, seq) execution order —
        but the entry object is *moved* between bags (two O(1) list
        operations) instead of being discarded and reallocated. This is
        the backbone of SRM timer re-arming (backoff, suppression
        resets): the heap backend cannot offer it because its entries
        are immutable tuples. A fired or cancelled handle is *revived*
        in place (fresh seq, no allocation) — the caller must therefore
        own the handle exclusively, which :class:`~repro.sim.timers.Timer`
        guarantees.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} units in the past (now={self.now})")
        bucket = event._bucket
        if bucket is None or event.cancelled:
            # Fired/cancelled handle: revive in place — fresh seq, no
            # allocation. Inlined (not a helper) because this is every
            # one-shot timer re-arm, i.e. once per fire in wave
            # workloads.
            seq = self._next_seq
            self._next_seq = seq + 1
            time = self.now + delay
            day = int(time * self._inv_width)
            event.time = time
            event.seq = seq
            event.cancelled = False
            event._day = day
            new_bucket = self._buckets[day & self._mask]
            event._index = len(new_bucket)
            event._bucket = new_bucket
            new_bucket.append(event)
            live = self._live + 1
            self._live = live
            if day < self._day:
                self._day = day
            self.perf.events_scheduled += 1
            if live > (self._nbuckets << 1) and self._nbuckets < MAX_BUCKETS:
                self._rebuild(min(self._nbuckets << 4, MAX_BUCKETS))
            return event
        counters = self.perf
        counters.events_cancelled += 1
        counters.events_scheduled += 1
        seq = self._next_seq
        self._next_seq = seq + 1
        time = self.now + delay
        day = int(time * self._inv_width)
        event.time = time
        event.seq = seq
        new_bucket = self._buckets[day & self._mask]
        if new_bucket is not bucket:
            index = event._index
            last = bucket.pop()
            if last is not event:
                bucket[index] = last
                last._index = index
            event._index = len(new_bucket)
            event._bucket = new_bucket
            new_bucket.append(event)
        event._day = day
        if day < self._day:
            self._day = day
        return event

    def schedule_many(self, delays: List[float],
                      callback: Callable[[], Any]) -> List[CalendarEvent]:
        """Arm one event per delay in a single call, in list order.

        The batch entry point for suppression waves (a detected loss
        arms a request timer on *every* member at once): one Python
        frame, calendar geometry in locals. Equivalent to calling
        :meth:`schedule` once per delay — same sequence numbers, same
        (time, seq) execution order, same counters.
        """
        now = self.now
        seq = self._next_seq
        inv = self._inv_width
        buckets = self._buckets
        mask = self._mask
        min_day = self._day
        out: List[CalendarEvent] = []
        append_out = out.append
        for delay in delays:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule {delay} units in the past (now={now})")
            time = now + delay
            day = int(time * inv)
            event = CalendarEvent(time, seq, callback, (), day, self)
            seq += 1
            bucket = buckets[day & mask]
            event._index = len(bucket)
            event._bucket = bucket
            bucket.append(event)
            append_out(event)
            if day < min_day:
                min_day = day
        self._next_seq = seq
        self._day = min_day
        count = len(out)
        live = self._live + count
        self._live = live
        self.perf.events_scheduled += count
        target = self._nbuckets
        while live > (target << 1) and target < MAX_BUCKETS:
            target <<= 4
        if target > MAX_BUCKETS:
            target = MAX_BUCKETS
        if target != self._nbuckets:
            self._rebuild(target)  # one jump, not a chain of doublings
        return out

    def rearm_many(self, events: List[CalendarEvent],
                   delays: List[float]) -> None:
        """Re-arm a batch of exclusively-owned handles, one per delay.

        Each pending handle is moved (cancel + schedule, counters
        included); each fired/cancelled handle is revived without
        allocation. One frame for a whole wave — the mega-session
        re-arm path.
        """
        now = self.now
        seq = self._next_seq
        inv = self._inv_width
        buckets = self._buckets
        mask = self._mask
        min_day = self._day
        counters = self.perf
        revived = 0
        moved = 0
        for event, delay in zip(events, delays):
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule {delay} units in the past (now={now})")
            time = now + delay
            day = int(time * inv)
            old_bucket = event._bucket
            if old_bucket is None or event.cancelled:
                event.cancelled = False
                revived += 1
            else:
                moved += 1
                index = event._index
                last = old_bucket.pop()
                if last is not event:
                    old_bucket[index] = last
                    last._index = index
            event.time = time
            event.seq = seq
            seq += 1
            event._day = day
            bucket = buckets[day & mask]
            event._index = len(bucket)
            event._bucket = bucket
            bucket.append(event)
            if day < min_day:
                min_day = day
        self._next_seq = seq
        self._day = min_day
        live = self._live + revived
        self._live = live
        counters.events_scheduled += revived + moved
        counters.events_cancelled += moved
        target = self._nbuckets
        while live > (target << 1) and target < MAX_BUCKETS:
            target <<= 4
        if target > MAX_BUCKETS:
            target = MAX_BUCKETS
        if target != self._nbuckets:
            self._rebuild(target)  # one jump, not a chain of doublings

    def cancel_many(self, events: List[CalendarEvent]) -> None:
        """Cancel a batch of handles in one frame (already-dead ones are
        skipped, exactly as with individual :meth:`CalendarEvent.cancel`
        calls)."""
        cancelled = 0
        for event in events:
            if event.cancelled:
                continue
            event.cancelled = True
            bucket = event._bucket
            if bucket is None:
                continue
            event._bucket = None
            index = event._index
            last = bucket.pop()
            if last is not event:
                bucket[index] = last
                last._index = index
            cancelled += 1
        self._live -= cancelled
        self.perf.events_cancelled += cancelled

    def _rebuild(self, nbuckets: int,
                 width: Optional[float] = None) -> None:
        """Re-bucket all live events into ``nbuckets`` buckets.

        Re-tags every entry's day, so the (time, seq) drain order is
        untouched by construction. With ``width``, that bucket width is
        adopted (the run loop's gap-driven adaptation); otherwise width
        is recomputed so a day holds ~2 live entries: from the observed
        inter-execution gap when one has been sampled, else from the
        live population's time span (see :data:`MIN_BUCKET_WIDTH`).
        """
        events: List[CalendarEvent] = []
        for bucket in self._buckets:
            events.extend(bucket)
        live = len(events)
        if width is None:
            width = self._width
            gap = self._gap_ewma
            if gap > 0.0:
                width = gap * 2.0
            elif live >= 2:
                lo = hi = events[0].time
                for ev in events:
                    t = ev.time
                    if t < lo:
                        lo = t
                    elif t > hi:
                        hi = t
                span = hi - lo
                if span > 0.0:
                    width = 2.0 * span / live
        if width < MIN_BUCKET_WIDTH:
            width = MIN_BUCKET_WIDTH
        inv = 1.0 / width
        self._width = width
        self._inv_width = inv
        buckets: List[List[CalendarEvent]]
        if nbuckets == self._nbuckets:
            # Width-only rebuild (the run loop's gap adaptation): reuse
            # the existing lists instead of allocating nbuckets fresh
            # ones. Only the run loop triggers this shape, and it
            # re-syncs its locals explicitly right after, so the bucket
            # identity staying the same is safe.
            buckets = self._buckets
            for b in buckets:
                b.clear()
        else:
            buckets = [[] for _ in range(nbuckets)]
            self._buckets = buckets
        self._nbuckets = nbuckets
        mask = nbuckets - 1
        self._mask = mask
        min_day: Optional[int] = None
        for ev in events:
            day = int(ev.time * inv)
            ev._day = day
            b = buckets[day & mask]
            ev._index = len(b)
            ev._bucket = b
            b.append(ev)
            if min_day is None or day < min_day:
                min_day = day
        self._day = min_day if min_day is not None else int(self.now * inv)
        self.perf.bucket_resizes += 1

    def _min_day(self) -> int:
        """Day of the earliest pending event (full scan; wrap recovery)."""
        best: Optional[float] = None
        for bucket in self._buckets:
            for ev in bucket:
                t = ev.time
                if best is None or t < best:
                    best = t
        assert best is not None  # only called with _live > 0
        return int(best * self._inv_width)

    def _find_next(self, limit: Optional[float],
                   remove: bool) -> Optional[CalendarEvent]:
        """Earliest pending event in (time, seq) order, or None.

        Advances the day cursor to the found event's day. With ``limit``,
        an event strictly beyond it is left in place and None is
        returned. With ``remove``, the found event is swap-removed.

        The bucket count only ever grows (on insert) — SRM's wave
        pattern of schedule-a-burst-then-suppress-90% oscillates the
        live population 10x every round, and a shrink-on-drain policy
        rebuilds the calendar every wave. Memory is bounded by the peak
        live population, as with the heap; :meth:`reset` reclaims it.
        """
        if self._live == 0:
            return None
        buckets = self._buckets
        mask = self._mask
        day = self._day
        misses = 0
        while True:
            bucket = buckets[day & mask]
            if bucket:
                best: Optional[CalendarEvent] = None
                best_time = 0.0
                best_seq = 0
                for ev in bucket:
                    if ev._day != day:
                        continue
                    t = ev.time
                    if (best is None or t < best_time
                            or (t == best_time and ev.seq < best_seq)):
                        best = ev
                        best_time = t
                        best_seq = ev.seq
                if best is not None:
                    self._day = day
                    self.perf.bucket_scan_len += len(bucket)
                    if limit is not None and best_time > limit:
                        return None
                    if remove:
                        index = best._index
                        last = bucket.pop()
                        if last is not best:
                            bucket[index] = last
                            last._index = index
                        best._bucket = None
                        self._live -= 1
                    return best
            day += 1
            misses += 1
            if misses >= self._nbuckets:
                # A full wrap without a hit: the population is sparse
                # relative to the calendar year. Jump straight to the
                # earliest occupied day instead of walking empty buckets.
                day = self._min_day()
                misses = 0

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run events in time order.

        Stops when no events remain, when the clock would pass ``until``
        (the clock is then advanced to exactly ``until``), or after
        ``max_events`` events. Returns the number of events executed by
        this call.
        """
        if self._running:
            raise SimulationError("scheduler is already running")
        self._running = True
        executed = 0
        scanned = 0
        counters = self.perf
        # The drain loop is inlined (rather than calling _find_next per
        # event) and keeps the calendar geometry in locals; callbacks can
        # schedule (backing the day cursor up or growing the calendar)
        # and cancel (in-place), so the locals are re-synced after every
        # callback return.
        try:
            live = self._live
            buckets = self._buckets
            mask = self._mask
            nbuckets = self._nbuckets
            day = self._day
            misses = 0
            ewma = self._gap_ewma
            prev_time = self.now
            next_adapt = executed + 64
            permuter = self._tie_permuter
            # Hoist the None checks out of the per-event loop.
            until_t = float("inf") if until is None else until
            max_e = -1 if max_events is None else max_events
            while live:
                if executed == max_e:
                    break
                bucket = buckets[day & mask]
                best: Optional[CalendarEvent] = None
                ties = 1
                if bucket:
                    best_time = 0.0
                    best_seq = 0
                    for ev in bucket:
                        if ev._day != day:
                            continue
                        t = ev.time
                        if best is None or t < best_time:
                            best = ev
                            best_time = t
                            best_seq = ev.seq
                            ties = 1
                        elif t == best_time:
                            ties += 1
                            if ev.seq < best_seq:
                                best = ev
                                best_seq = ev.seq
                if best is None:
                    day += 1
                    misses += 1
                    if misses >= nbuckets:
                        # A full wrap without a hit: the population is
                        # sparse relative to the year. If the observed
                        # event gap says days are far too narrow, widen;
                        # either way jump to the earliest occupied day.
                        if ewma > self._width * 2.0 and live >= 2:
                            self._rebuild(nbuckets, ewma * 2.0)
                            buckets = self._buckets
                            mask = self._mask
                            nbuckets = self._nbuckets
                        day = self._min_day()
                        misses = 0
                    continue
                misses = 0
                blen = len(bucket)
                scanned += blen
                if best_time > until_t:
                    self._day = day
                    break
                if ties > 1:
                    # Same-instant burst: a multicast fan-out delivers to
                    # every equidistant member at the exact same time, and
                    # min-scanning the bucket once per member costs
                    # O(k^2) for a k-way tie. Collect the whole tie group
                    # in one pass, sort by seq (C-speed: unique ints),
                    # and drain it without rescanning. Any event a
                    # callback schedules, revives, or re-arms gets a
                    # fresh, larger seq, so it sorts after every batch
                    # member and the normal drain picks it up — the seq
                    # guard below drops re-armed members from the batch
                    # for the same reason.
                    scanned += blen
                    batch = [(ev.seq, ev) for ev in bucket
                             if ev._day == day and ev.time == best_time]
                    batch.sort()
                    if permuter is not None:
                        # Race-detector hook: fire the tie group in a
                        # permuted order instead of seq order. The seq
                        # guard below is order-independent, so the batch
                        # mechanics need no other change.
                        batch = permuter(batch)
                    for seq, ev in batch:
                        if executed == max_e:
                            break
                        if ev.cancelled or ev.seq != seq:
                            continue  # cancelled or re-armed mid-batch
                        tie_bucket = ev._bucket
                        if tie_bucket is None:
                            continue
                        index = ev._index
                        last = tie_bucket.pop()
                        if last is not ev:
                            tie_bucket[index] = last
                            last._index = index
                        ev._bucket = None
                        self._live -= 1
                        self._day = ev._day
                        self.now = best_time
                        delta = best_time - prev_time - ewma
                        ewma += (delta * 0.25 if delta < 0.0
                                 else delta * 0.015625)
                        prev_time = best_time
                        ev.callback(*ev.args)
                        executed += 1
                    live = self._live
                    day = self._day
                    if buckets is not self._buckets:
                        buckets = self._buckets
                        mask = self._mask
                        nbuckets = self._nbuckets
                    continue
                index = best._index
                last = bucket.pop()
                if last is not best:
                    bucket[index] = last
                    last._index = index
                best._bucket = None
                live -= 1
                self._live = live
                self._day = day
                self.now = best_time
                # Observed timer-interval distribution: asymmetric EWMA
                # of the gap between consecutive executions — fast to
                # shrink (1/4), slow to grow (1/64). Burst-then-idle
                # workloads (a multicast fan-out's cluster of arrivals,
                # then nothing until the next send) keep the estimate —
                # and hence the bucket width — sized for the *dense*
                # regime whose scans dominate, instead of letting the
                # occasional long gap drag it up.
                delta = best_time - prev_time - ewma
                ewma += delta * 0.25 if delta < 0.0 else delta * 0.015625
                prev_time = best_time
                best.callback(*best.args)
                executed += 1
                live = self._live
                day = self._day
                if buckets is not self._buckets:
                    buckets = self._buckets
                    mask = self._mask
                    nbuckets = self._nbuckets
                if blen >= 16 and executed >= next_adapt and live >= 64:
                    # Days are overcrowded (the min-scan just walked a
                    # 16+ entry bucket) and the observed gap says they
                    # are far too wide: adopt a gap-sized width. The 4x
                    # hysteresis and the cooldown keep same-instant
                    # bursts (which no width can separate) from
                    # thrashing rebuilds.
                    target = ewma * 2.0
                    if 0.0 < target < self._width * 0.25:
                        self._rebuild(nbuckets, target)
                        buckets = self._buckets
                        mask = self._mask
                        nbuckets = self._nbuckets
                        day = self._day
                        next_adapt = executed + 64 + (live >> 2)
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
            self._gap_ewma = ewma
            self.events_processed += executed
            counters.events_executed += executed
            counters.bucket_scan_len += scanned
        return executed

    def step(self) -> bool:
        """Execute the single next pending event. Returns False if none."""
        event = self._find_next(None, True)
        if event is None:
            return False
        self.now = event.time
        event.callback(*event.args)
        self.events_processed += 1
        self.perf.events_executed += 1
        return True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if none are pending."""
        event = self._find_next(None, False)
        return None if event is None else event.time

    def reset(self) -> None:
        """Drop all pending events, rewind the clock, reclaim buckets."""
        if self._running:
            raise SimulationError("cannot reset a running scheduler")
        for bucket in self._buckets:
            for ev in bucket:
                ev._bucket = None  # late cancels must not corrupt counters
        self._buckets = [[] for _ in range(MIN_BUCKETS)]
        self._nbuckets = MIN_BUCKETS
        self._mask = MIN_BUCKETS - 1
        self._width = 1.0
        self._inv_width = 1.0
        self._live = 0
        self._day = 0
        self._gap_ewma = 0.0
        self.now = 0.0
        self.events_processed = 0


#: Either concrete backend; both execute identical (time, seq) order.
SimScheduler = Union[EventScheduler, CalendarScheduler]

#: Backend used when ``SRM_SCHED_BACKEND`` is unset. Calendar won the
#: A/B equivalence sweep (byte-identical goldens) and the kernel bench.
DEFAULT_BACKEND = "calendar"

#: Environment variable selecting the backend (``heap`` or ``calendar``);
#: set by ``--sched-backend`` so runner worker processes inherit it.
SCHED_BACKEND_ENV = "SRM_SCHED_BACKEND"

_BACKENDS = ("heap", "calendar")


def scheduler_backend() -> str:
    """The configured backend name: env override or the default."""
    from repro import env

    name = env.sched_backend()
    if not name:
        return DEFAULT_BACKEND
    if name not in _BACKENDS:
        raise SimulationError(
            f"unknown scheduler backend {name!r} "
            f"(expected one of {', '.join(_BACKENDS)})")
    return name


def create_scheduler(backend: Optional[str] = None) -> SimScheduler:
    """Build a scheduler: ``backend`` overrides ``SRM_SCHED_BACKEND``."""
    name = backend if backend is not None else scheduler_backend()
    if name == "heap":
        return EventScheduler()
    if name == "calendar":
        return CalendarScheduler()
    raise SimulationError(
        f"unknown scheduler backend {name!r} "
        f"(expected one of {', '.join(_BACKENDS)})")
