"""Closed-form models from Section IV of the paper.

Chains exhibit *deterministic* suppression (timers as a function of
distance); stars exhibit *probabilistic* suppression (randomized timers);
trees combine both. These models back the analysis overlays in Figs. 5-6
and the Section IV unit tests.
"""

from repro.analysis.star import (
    expected_first_request_delay_ratio,
    expected_requests,
    nack_breakeven_interval,
)
from repro.analysis.chain import (
    ChainRecoverySchedule,
    chain_recovery_schedule,
    unicast_recovery_delay,
)
from repro.analysis.tree import (
    always_suppressed_level,
    max_duplicate_request_level,
)

__all__ = [
    "expected_requests",
    "expected_first_request_delay_ratio",
    "nack_breakeven_interval",
    "ChainRecoverySchedule",
    "chain_recovery_schedule",
    "unicast_recovery_delay",
    "always_suppressed_level",
    "max_duplicate_request_level",
]
