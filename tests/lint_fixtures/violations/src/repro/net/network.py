"""Fixture: SRM006 — unguarded hot-path Trace.record."""


class Delivery:
    def __init__(self, trace, scheduler) -> None:
        self.trace = trace
        self.scheduler = scheduler

    def deliver(self, node: int) -> None:
        self.trace.record(self.scheduler.now, node, "deliver")  # line 10
