"""The typed SRM_* knob registry (repro.env).

Every environment variable the repo honors is declared once in
``repro.env.KNOBS`` and read through typed accessors; the fleet ships
the determinism-relevant subset to workers as an env block. These tests
pin the registry's shape, the accessors' parsing, and the block
round-trip (snapshot -> apply) including its refusal to smuggle
undeclared variables.
"""

from __future__ import annotations

import os

import pytest

from repro import env


# ----------------------------------------------------------------------
# Registry shape
# ----------------------------------------------------------------------


def test_every_knob_is_declared_once_with_srm_prefix():
    names = [knob.name for knob in env.KNOBS]
    assert len(names) == len(set(names))
    assert all(name.startswith("SRM_") for name in names)
    assert all(knob.kind in ("bool", "str", "int", "path")
               for knob in env.KNOBS)
    assert all(knob.help for knob in env.KNOBS)


def test_wire_knobs_are_declared_knobs():
    declared = {knob.name for knob in env.KNOBS}
    assert set(env.WIRE_KNOBS) <= declared
    # The determinism-relevant three, exactly: what a task computes.
    assert set(env.WIRE_KNOBS) == {"SRM_CHECK", "SRM_SCHED_BACKEND",
                                   "SRM_CACHE_SALT"}


def test_knob_lookup_rejects_undeclared_names():
    assert env.knob("SRM_CHECK").kind == "bool"
    with pytest.raises(env.UnknownKnobError):
        env.knob("SRM_NOT_A_KNOB")
    with pytest.raises(env.UnknownKnobError):
        env.knob("PATH")


# ----------------------------------------------------------------------
# Typed accessors
# ----------------------------------------------------------------------


def test_check_accessor_and_setter(monkeypatch):
    monkeypatch.delenv("SRM_CHECK", raising=False)
    assert env.check_enabled() is False
    monkeypatch.setenv("SRM_CHECK", "0")
    assert env.check_enabled() is False
    monkeypatch.setenv("SRM_CHECK", "1")
    assert env.check_enabled() is True
    env.set_check(False)
    assert "SRM_CHECK" not in os.environ
    env.set_check(True)
    assert os.environ["SRM_CHECK"] == "1"
    env.set_check(False)


def test_sched_backend_is_normalized(monkeypatch):
    monkeypatch.delenv("SRM_SCHED_BACKEND", raising=False)
    assert env.sched_backend() == ""
    monkeypatch.setenv("SRM_SCHED_BACKEND", "  HEAP ")
    assert env.sched_backend() == "heap"
    env.set_sched_backend("calendar")
    assert os.environ["SRM_SCHED_BACKEND"] == "calendar"


def test_cache_dir_default_and_override(monkeypatch):
    monkeypatch.setenv("SRM_CACHE_DIR", "/tmp/somewhere")
    assert env.cache_dir() == "/tmp/somewhere"
    monkeypatch.delenv("SRM_CACHE_DIR", raising=False)
    assert env.cache_dir() == "results/.cache"


def test_cache_salt_defaults_to_package_version(monkeypatch):
    import repro

    monkeypatch.delenv("SRM_CACHE_SALT", raising=False)
    assert env.cache_salt() == f"repro-{repro.__version__}"
    monkeypatch.setenv("SRM_CACHE_SALT", "experiment-42")
    assert env.cache_salt() == "experiment-42"


def test_bench_accessors(monkeypatch):
    for name in ("SRM_BENCH_FULL", "SRM_BENCH_JOBS", "SRM_BENCH_CACHE",
                 "SRM_BENCH_CACHE_DIR", "SRM_BENCH_MANIFEST"):
        monkeypatch.delenv(name, raising=False)
    assert env.bench_full() is False
    assert env.bench_jobs() == 1
    assert env.bench_cache_enabled() is False
    assert env.bench_cache_dir() == "results/.cache"
    assert env.bench_manifest() is None
    monkeypatch.setenv("SRM_BENCH_FULL", "1")
    monkeypatch.setenv("SRM_BENCH_JOBS", "8")
    monkeypatch.setenv("SRM_BENCH_MANIFEST", "out.jsonl")
    assert env.bench_full() is True
    assert env.bench_jobs() == 8
    assert env.bench_manifest() == "out.jsonl"


def test_hypothesis_profile_default(monkeypatch):
    monkeypatch.delenv("SRM_HYPOTHESIS_PROFILE", raising=False)
    assert env.hypothesis_profile() == "ci"
    monkeypatch.setenv("SRM_HYPOTHESIS_PROFILE", "nightly")
    assert env.hypothesis_profile() == "nightly"


# ----------------------------------------------------------------------
# Env blocks: snapshot -> wire -> apply
# ----------------------------------------------------------------------


def test_snapshot_only_reports_explicitly_set_knobs(monkeypatch):
    for name in env.WIRE_KNOBS:
        monkeypatch.delenv(name, raising=False)
    assert env.snapshot() == {}
    monkeypatch.setenv("SRM_CHECK", "1")
    monkeypatch.setenv("SRM_SCHED_BACKEND", "heap")
    assert env.snapshot() == {"SRM_CHECK": "1",
                              "SRM_SCHED_BACKEND": "heap"}


def test_snapshot_wire_only_excludes_local_knobs(monkeypatch):
    monkeypatch.setenv("SRM_BENCH_JOBS", "4")
    assert "SRM_BENCH_JOBS" not in env.snapshot()
    assert "SRM_BENCH_JOBS" in env.snapshot(wire_only=False)


def test_apply_round_trips_a_snapshot(monkeypatch):
    monkeypatch.setenv("SRM_CHECK", "1")
    monkeypatch.setenv("SRM_CACHE_SALT", "salt-x")
    block = env.snapshot()
    monkeypatch.delenv("SRM_CHECK", raising=False)
    monkeypatch.delenv("SRM_CACHE_SALT", raising=False)
    env.apply(block)
    try:
        assert env.check_enabled() is True
        assert env.cache_salt() == "salt-x"
    finally:
        os.environ.pop("SRM_CHECK", None)
        os.environ.pop("SRM_CACHE_SALT", None)


def test_apply_refuses_undeclared_variables(monkeypatch):
    monkeypatch.delenv("SRM_CHECK", raising=False)
    with pytest.raises(env.UnknownKnobError):
        env.apply({"SRM_CHECK": "1", "LD_PRELOAD": "evil.so"})
    # Validation happens before any assignment: nothing was applied.
    assert "SRM_CHECK" not in os.environ


def test_call_sites_read_through_the_registry(monkeypatch):
    """The migrated call sites honor the knobs via repro.env."""
    from repro.oracle.base import check_mode_enabled
    from repro.runner.executor import code_version_salt
    from repro.sim.scheduler import scheduler_backend

    monkeypatch.setenv("SRM_CHECK", "1")
    assert check_mode_enabled() is True
    monkeypatch.setenv("SRM_SCHED_BACKEND", "heap")
    assert scheduler_backend() == "heap"
    monkeypatch.setenv("SRM_CACHE_SALT", "pinned")
    assert code_version_salt() == "pinned"
