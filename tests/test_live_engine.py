"""The Engine protocol and the real-time scheduler.

Both execution environments — the discrete-event ``Network`` and the
asyncio ``LiveEngine`` — must satisfy the one structural ``Engine``
interface agents are written against, and the live scheduler must keep
the sim scheduler's semantics agents rely on: relative one-shot timers,
cancellation, and a ``now`` frozen for the duration of each callback.
"""

from __future__ import annotations

import asyncio
import time

from repro.live.engine import Engine
from repro.live.scheduler import LiveScheduler
from repro.live.session import LiveEngine, live_config
from repro.net.network import Network
from repro.net.packet import GroupAddress
from repro.sim.timers import Timer, TimerScheduler


def test_both_engines_satisfy_the_protocol():
    assert isinstance(Network(), Engine)
    assert isinstance(LiveEngine(), Engine)


def test_schedulers_satisfy_the_timer_protocol():
    assert isinstance(LiveScheduler(), TimerScheduler)
    assert isinstance(Network().scheduler, TimerScheduler)


# ----------------------------------------------------------------------
# LiveScheduler semantics
# ----------------------------------------------------------------------


def _drive(scheduler: LiveScheduler, duration: float) -> None:
    async def body() -> None:
        scheduler.start(asyncio.get_running_loop())
        await asyncio.sleep(duration)
        scheduler.stop()

    asyncio.run(body())


def test_events_fire_in_expiry_order():
    scheduler = LiveScheduler()
    fired = []
    scheduler.schedule(0.05, fired.append, "late")
    scheduler.schedule(0.01, fired.append, "early")
    scheduler.schedule(0.03, fired.append, "middle")
    _drive(scheduler, 0.2)
    assert fired == ["early", "middle", "late"]
    assert scheduler.fired == 3


def test_cancelled_events_never_fire():
    scheduler = LiveScheduler()
    fired = []
    keep = scheduler.schedule(0.01, fired.append, "keep")
    drop = scheduler.schedule(0.01, fired.append, "drop")
    drop.cancel()
    _drive(scheduler, 0.1)
    assert fired == ["keep"]
    assert keep.fired and not drop.fired
    assert scheduler.pending_count == 0


def test_now_is_frozen_during_a_callback():
    scheduler = LiveScheduler()
    stamps = []

    def callback() -> None:
        before = scheduler.now
        time.sleep(0.02)  # real time passes; session time must not
        stamps.append((before, scheduler.now))

    scheduler.schedule(0.01, callback)
    _drive(scheduler, 0.1)
    (before, after), = stamps
    assert before == after


def test_now_advances_between_dispatch_points():
    scheduler = LiveScheduler()
    stamps = []
    scheduler.schedule(0.01, lambda: stamps.append(scheduler.now))
    scheduler.schedule(0.05, lambda: stamps.append(scheduler.now))
    _drive(scheduler, 0.2)
    assert stamps[1] > stamps[0] >= 0.0


def test_events_scheduled_before_start_are_parked_then_armed():
    scheduler = LiveScheduler()
    fired = []
    scheduler.schedule(0.01, fired.append, "parked")
    assert scheduler.pending_count == 1
    _drive(scheduler, 0.1)
    assert fired == ["parked"]


def test_srm_timer_runs_on_the_live_scheduler():
    scheduler = LiveScheduler()
    fired = []
    timer = Timer(scheduler, lambda: fired.append(scheduler.now))
    timer.start(0.01)
    assert timer.pending
    _drive(scheduler, 0.1)
    assert len(fired) == 1 and not timer.pending


def test_srm_timer_cancel_on_the_live_scheduler():
    scheduler = LiveScheduler()
    fired = []
    timer = Timer(scheduler, lambda: fired.append("no"))
    timer.start(0.01)
    timer.cancel()
    _drive(scheduler, 0.05)
    assert fired == [] and not timer.pending


# ----------------------------------------------------------------------
# LiveEngine surface
# ----------------------------------------------------------------------


def test_group_size_counts_local_and_remote_members():
    engine = LiveEngine()
    group = engine.groups.allocate("g")
    assert engine.group_size(group) == 1  # floored, like the sim
    engine.join(1, group)
    engine.join(2, group)
    assert engine.group_size(group) == 2
    # A frame from an unknown origin counts it as a remote member.
    engine._remote_members.setdefault(group.gid, {})[99] = None
    assert engine.group_size(group) == 3


def test_garbage_frames_are_dropped_and_counted():
    engine = LiveEngine()
    engine._on_frame({"v": "not-a-packet"})
    engine._on_frame({})
    assert engine.decode_errors == 2
    assert engine.frames_received == 0


def test_own_origin_frames_are_discarded():
    from repro.core.agent import SrmAgent
    from repro.core.messages import KIND_DATA, DataPayload
    from repro.core.names import AduName, PageId
    from repro.live.framing import decode_frame, packet_to_frame

    engine = LiveEngine()
    agent = SrmAgent(live_config())
    engine.attach(5, agent)
    group = engine.groups.allocate("g")
    agent.join_group(group)
    payload = DataPayload(name=AduName(5, PageId(0, 0), 1), data="x")
    packet = engine.send_multicast(5, group, KIND_DATA, payload=payload)
    wire = decode_frame(packet_to_frame(packet))
    engine._on_frame(wire)
    assert engine.frames_received == 0  # looped-back own frame
