"""A TCP-style sender-reliable multicast baseline.

The sender multicasts data, every receiver unicasts a positive ACK for
every packet, and the sender retransmits (multicast) anything a tracked
receiver has not acknowledged by a timeout. This is the design Section
II-A rules out: the sender absorbs G-1 ACKs per packet (ACK implosion),
must know the receiver set, and its retransmit timer has no single
meaningful RTT to adapt to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.net.network import Network
from repro.net.node import Agent
from repro.net.packet import GroupAddress, NodeId, Packet
from repro.sim.timers import Timer

KIND_DATA = "ack-data"
KIND_ACK = "ack-ack"


@dataclass(frozen=True)
class AckDataPayload:
    seq: int
    data: object


@dataclass(frozen=True)
class AckPayload:
    seq: int
    receiver: int


class SenderAckSource(Agent):
    """The sender: tracks per-receiver ACK state, retransmits on timeout."""

    def __init__(self, group: GroupAddress, receivers: List[NodeId],
                 retransmit_timeout: float = 50.0,
                 max_retransmits: int = 10) -> None:
        super().__init__()
        self.group = group
        self.receivers = list(receivers)
        self.retransmit_timeout = retransmit_timeout
        self.max_retransmits = max_retransmits
        self.next_seq = 1
        self._data: Dict[int, object] = {}
        self._unacked: Dict[int, Set[NodeId]] = {}
        self._timers: Dict[int, Timer] = {}
        self._attempts: Dict[int, int] = {}
        self.acks_received = 0
        self.data_sent = 0
        self.retransmissions = 0

    def attached(self, network: Network, node_id: NodeId) -> None:
        super().attached(network, node_id)
        network.join(node_id, self.group)

    def send_data(self, data: object) -> int:
        seq = self.next_seq
        self.next_seq += 1
        self._data[seq] = data
        self._unacked[seq] = {receiver for receiver in self.receivers
                              if receiver != self.node_id}
        self._attempts[seq] = 0
        self._transmit(seq)
        return seq

    def _transmit(self, seq: int) -> None:
        self.network.send_multicast(self.node_id, self.group, KIND_DATA,
                                    AckDataPayload(seq, self._data[seq]))
        self.data_sent += 1
        self._attempts[seq] += 1
        timer = self._timers.get(seq)
        if timer is None:
            timer = Timer(self.network.scheduler,
                          lambda s=seq: self._timeout(s),
                          name=f"rto:{seq}")
            self._timers[seq] = timer
        timer.start(self.retransmit_timeout)

    def _timeout(self, seq: int) -> None:
        if not self._unacked.get(seq):
            return
        if self._attempts[seq] >= self.max_retransmits:
            return  # give up: the receiver set is unreachable
        self.retransmissions += 1
        self._transmit(seq)

    def receive(self, packet: Packet) -> None:
        if packet.kind != KIND_ACK:
            return
        payload: AckPayload = packet.payload
        self.acks_received += 1
        outstanding = self._unacked.get(payload.seq)
        if outstanding is None:
            return
        outstanding.discard(payload.receiver)
        if not outstanding:
            timer = self._timers.pop(payload.seq, None)
            if timer is not None:
                timer.cancel()

    def fully_acknowledged(self, seq: int) -> bool:
        return not self._unacked.get(seq)


class SenderAckReceiver(Agent):
    """A receiver: stores data and unicasts an ACK per packet."""

    def __init__(self, group: GroupAddress, source: NodeId) -> None:
        super().__init__()
        self.group = group
        self.source = source
        self.received: Dict[int, object] = {}
        self.acks_sent = 0
        self.first_received_at: Dict[int, float] = {}

    def attached(self, network: Network, node_id: NodeId) -> None:
        super().attached(network, node_id)
        network.join(node_id, self.group)

    def receive(self, packet: Packet) -> None:
        if packet.kind != KIND_DATA:
            return
        payload: AckDataPayload = packet.payload
        if payload.seq not in self.received:
            self.received[payload.seq] = payload.data
            self.first_received_at[payload.seq] = self.now
        self.network.send_unicast(self.node_id, self.source, KIND_ACK,
                                  AckPayload(payload.seq, self.node_id),
                                  size=60)
        self.acks_sent += 1


def build_sender_ack_session(network: Network, source: NodeId,
                             receivers: List[NodeId],
                             retransmit_timeout: float = 50.0,
                             ) -> Tuple[SenderAckSource,
                                        Dict[NodeId, SenderAckReceiver]]:
    """Wire up one sender-reliable session on an existing network."""
    group = network.groups.allocate("ack-session")
    sender = SenderAckSource(group, receivers,
                             retransmit_timeout=retransmit_timeout)
    network.attach(source, sender)
    attached = {}
    for receiver in receivers:
        if receiver == source:
            continue
        agent = SenderAckReceiver(group, source)
        network.attach(receiver, agent)
        attached[receiver] = agent
    return sender, attached
