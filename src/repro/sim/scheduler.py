"""Event scheduler: the heart of the discrete-event kernel.

A simulation is a single :class:`EventScheduler` plus callbacks. Events are
ordered by (time, sequence number) so that simultaneous events fire in the
order they were scheduled, which keeps runs exactly reproducible for a given
random seed.

Two hot-path design decisions, both invisible to callers:

* Heap entries are ``(time, seq, event)`` tuples rather than the
  :class:`Event` objects themselves. ``seq`` is unique, so tuple
  comparison is decided at C speed without ever calling a Python
  ``__lt__`` — on event-dense workloads the comparison cost of heap
  maintenance drops by an order of magnitude.
* Cancellation is lazy (a cancelled event stays in the heap and is
  skipped when popped), but the scheduler counts cancelled-in-heap
  entries and *compacts* the heap when they dominate. SRM suppression
  cancels most request/repair timers, so without compaction the heap of
  a long session grows with dead entries and every push/pop pays their
  log-factor. Compaction preserves (time, seq) order exactly, so
  execution order — and therefore every seeded result — is unchanged.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Tuple

from repro.sim import perf

#: Compact only when the heap holds more cancelled entries than this
#: *and* they are the majority — small heaps never pay a rebuild.
COMPACT_MIN_CANCELLED = 256


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice, ...)."""


class Event:
    """A handle for a scheduled callback.

    Events are created by :meth:`EventScheduler.schedule` and may be
    cancelled. A cancelled event stays in the heap but is skipped when
    popped (lazy deletion), which makes cancellation O(1); the owning
    scheduler compacts the heap when cancelled entries dominate.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sched")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...],
                 sched: Optional["EventScheduler"] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sched = sched

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sched is not None:
            self._sched._note_cancelled(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.4f} {name} {state}>"


class EventScheduler:
    """A discrete-event scheduler with a monotonic simulated clock.

    Typical use::

        sched = EventScheduler()
        sched.schedule(1.5, node.receive, packet)
        sched.run(until=100.0)
    """

    __slots__ = ("_heap", "_next_seq", "_now", "_running",
                 "_events_processed", "_cancelled_in_heap",
                 "_heap_rebuilds", "perf")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._next_seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        #: Cancelled events still sitting in the heap (lazy deletion).
        self._cancelled_in_heap = 0
        self._heap_rebuilds = 0
        self.perf = perf.GLOBAL

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_processed

    @property
    def heap_rebuilds(self) -> int:
        """Number of compactions performed (for instrumentation)."""
        return self._heap_rebuilds

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events. O(1)."""
        return len(self._heap) - self._cancelled_in_heap

    def heap_size(self) -> int:
        """Total heap entries, including cancelled ones awaiting removal."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` units from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} units in the past (now={self._now})")
        time = self._now + delay
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback, args, self)
        heapq.heappush(self._heap, (time, seq, event))
        self.perf.events_scheduled += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, clock already at {self._now}")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback, args, self)
        heapq.heappush(self._heap, (time, seq, event))
        self.perf.events_scheduled += 1
        return event

    def _note_cancelled(self, event: Event) -> None:
        """Bookkeeping for a cancel; compacts when dead entries dominate."""
        self._cancelled_in_heap += 1
        self.perf.events_cancelled += 1
        cancelled = self._cancelled_in_heap
        if (cancelled >= COMPACT_MIN_CANCELLED
                and cancelled * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, preserving order.

        Mutates the heap list in place so a concurrently-executing
        :meth:`run` loop (which holds a reference to it) sees the
        compacted heap.
        """
        heap = self._heap
        if len(heap) > self.perf.heap_peak:
            self.perf.heap_peak = len(heap)
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self._heap_rebuilds += 1
        self.perf.heap_rebuilds += 1

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run events in time order.

        Stops when the heap empties, when the clock would pass ``until``
        (the clock is then advanced to exactly ``until``), or after
        ``max_events`` events. Returns the number of events executed by
        this call.
        """
        if self._running:
            raise SimulationError("scheduler is already running")
        self._running = True
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        counters = self.perf
        if len(heap) > counters.heap_peak:
            counters.heap_peak = len(heap)
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                time, _, event = heap[0]
                if event.cancelled:
                    pop(heap)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and time > until:
                    break
                pop(heap)
                # A fired event is out of the heap: a late cancel() on its
                # handle must not touch the in-heap cancellation counter.
                event._sched = None
                self._now = time
                event.callback(*event.args)
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            self._events_processed += executed
            counters.events_executed += executed
        return executed

    def step(self) -> bool:
        """Execute the single next pending event. Returns False if none."""
        heap = self._heap
        while heap:
            time, _, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            event._sched = None
            self._now = time
            event.callback(*event.args)
            self._events_processed += 1
            self.perf.events_executed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        if heap:
            return heap[0][0]
        return None

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running scheduler")
        for _, _, event in self._heap:
            event._sched = None  # late cancels must not corrupt counters
        self._heap.clear()
        self._cancelled_in_heap = 0
        self._now = 0.0
        self._events_processed = 0
