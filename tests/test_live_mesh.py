"""Loss recovery on the live engine's in-process mesh.

The real-time counterpart of the sim's recovery tests: several SRM
agents in one process, multicast routed through the loss-injecting
proxy link, driven by actual asyncio timers. Every member must converge
to the full ADU set and the wall-clock-tolerant protocol oracles must
stay green over the live trace stream.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.agent import SrmAgent
from repro.core.names import AduName
from repro.live.session import LiveEngine, attach_live_oracles, live_config
from repro.live.transport import LinkEmulator
from repro.sim.rng import RandomSource


def _build_mesh(members: int, loss: float, seed: int):
    master = RandomSource(seed)
    link = LinkEmulator(master.fork("link"), loss=loss, delay=0.005,
                        jitter=0.002)
    engine = LiveEngine(link=link, default_distance=0.01)
    config = live_config(default_distance=0.01)
    group = engine.groups.allocate("mesh")
    agents: Dict[int, SrmAgent] = {}
    for member in range(members):
        agent = SrmAgent(config, master.fork(f"member-{member}"))
        engine.attach(member, agent)
        agent.join_group(group)
        agents[member] = agent
    return engine, link, agents


def test_mesh_recovers_under_heavy_loss_with_oracles_green():
    engine, link, agents = _build_mesh(members=4, loss=0.3, seed=42)
    suite = attach_live_oracles(engine, agents=agents)
    source = agents[0]
    sent: List[AduName] = []

    def send(index: int) -> None:
        sent.append(source.send_data(f"adu-{index}"))

    packets = 20
    for index in range(packets):
        engine.scheduler.schedule(index * 0.02, send, index)

    def converged() -> bool:
        return (len(sent) == packets
                and all(agent.store.have(name)
                        for agent in agents.values() for name in sent))

    engine.run(6.0, stop_when=converged)

    assert len(sent) == packets
    assert converged(), {
        member: sum(1 for name in sent if agent.store.have(name))
        for member, agent in agents.items()}
    # 30% loss over 3 receivers x 20 data packets: recovery genuinely ran.
    assert link.dropped > 0
    suite.verify(context="live mesh recovery")


def test_mesh_without_loss_needs_no_recovery():
    engine, link, agents = _build_mesh(members=3, loss=0.0, seed=1)
    source = agents[0]
    sent: List[AduName] = []
    engine.scheduler.schedule(0.0, lambda: sent.append(
        source.send_data("only")))

    def converged() -> bool:
        return bool(sent) and all(agent.store.have(sent[0])
                                  for agent in agents.values())

    engine.run(2.0, stop_when=converged)
    assert converged()
    assert link.dropped == 0
    # No loss -> no request traffic in the trace.
    kinds = {record.kind for record in engine.trace.records}
    assert "send_request" not in kinds


def test_mesh_trace_carries_drop_records():
    engine, link, agents = _build_mesh(members=4, loss=0.5, seed=7)
    engine.trace.enabled = True
    source = agents[0]
    sent: List[AduName] = []
    for index in range(5):
        engine.scheduler.schedule(index * 0.01,
                                  lambda i=index: sent.append(
                                      source.send_data(f"d-{i}")))

    def converged() -> bool:
        return (len(sent) == 5
                and all(agent.store.have(name)
                        for agent in agents.values() for name in sent))

    engine.run(6.0, stop_when=converged)
    drops = [record for record in engine.trace.records
             if record.kind == "drop"]
    assert len(drops) == engine.packets_dropped == link.dropped
    assert converged()
