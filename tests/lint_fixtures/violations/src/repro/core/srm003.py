"""Fixture: SRM003 — mutable default argument."""


def collect(item: int, into: list = []) -> list:  # line 4: SRM003
    into.append(item)
    return into
