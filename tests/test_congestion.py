"""Tests for queueing links and emergent congestion."""

import pytest

from repro.experiments.congestion import run_congestion_experiment
from repro.net.link import Link
from repro.net.node import Agent
from repro.net.packet import Packet
from repro.sim.scheduler import EventScheduler
from repro.topology.chain import chain


class Sink(Agent):
    def __init__(self):
        super().__init__()
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.now, packet.uid))


# ----------------------------------------------------------------------
# Link-level queueing semantics
# ----------------------------------------------------------------------

def test_set_bandwidth_validation():
    link = Link(0, 1)
    with pytest.raises(ValueError):
        link.set_bandwidth(0.0)
    with pytest.raises(ValueError):
        link.set_bandwidth(10.0, queue_limit=0)


def test_plain_link_arrival_is_propagation_only():
    sched = EventScheduler()
    link = Link(0, 1, delay=3.0)
    packet = Packet(origin=0, dst=1, kind="data", size=1000)
    assert link.arrival_time(sched, packet, 0) == 3.0


def test_serialization_delay():
    sched = EventScheduler()
    link = Link(0, 1, delay=1.0).set_bandwidth(500.0)
    packet = Packet(origin=0, dst=1, kind="data", size=1000)
    # 1000/500 = 2 units of serialization + 1 propagation.
    assert link.arrival_time(sched, packet, 0) == pytest.approx(3.0)


def test_fifo_queueing_accumulates():
    sched = EventScheduler()
    link = Link(0, 1, delay=1.0).set_bandwidth(500.0)
    packet = Packet(origin=0, dst=1, kind="data", size=1000)
    arrivals = [link.arrival_time(sched, packet, 0) for _ in range(3)]
    assert arrivals == [pytest.approx(3.0), pytest.approx(5.0),
                        pytest.approx(7.0)]


def test_tail_drop_when_buffer_full():
    sched = EventScheduler()
    link = Link(0, 1, delay=1.0).set_bandwidth(500.0)
    link.queue_limit = 2
    packet = Packet(origin=0, dst=1, kind="data", size=1000)
    assert link.arrival_time(sched, packet, 0) is not None
    assert link.arrival_time(sched, packet, 0) is not None
    assert link.arrival_time(sched, packet, 0) is None
    assert link.queue_drops == 1


def test_buffer_drains_over_time():
    sched = EventScheduler()
    link = Link(0, 1, delay=1.0).set_bandwidth(500.0)
    link.queue_limit = 2
    packet = Packet(origin=0, dst=1, kind="data", size=1000)
    link.arrival_time(sched, packet, 0)
    link.arrival_time(sched, packet, 0)
    assert link.occupancy(0) == 2
    sched.run(until=10.0)  # both serialized by t=4
    assert link.occupancy(0) == 0
    assert link.arrival_time(sched, packet, 0) is not None


def test_directions_are_independent():
    sched = EventScheduler()
    link = Link(0, 1, delay=1.0).set_bandwidth(500.0)
    packet = Packet(origin=0, dst=1, kind="data", size=1000)
    link.arrival_time(sched, packet, 0)
    # The reverse direction is idle: no queueing delay.
    assert link.arrival_time(sched, packet, 1) == pytest.approx(3.0)


# ----------------------------------------------------------------------
# Network integration
# ----------------------------------------------------------------------

def test_direct_mode_rejects_queueing_links():
    network = chain(3).build(delivery="direct")
    with pytest.raises(ValueError):
        network.set_link_bandwidth(0, 1, 500.0)


def test_hop_delivery_through_bottleneck_orders_fifo():
    network = chain(3).build(delivery="hop")
    network.set_link_bandwidth(1, 2, 500.0)
    sink = Sink()
    network.attach(2, sink)
    group = network.groups.allocate()
    network.join(2, group)
    for _ in range(3):
        network.scheduler.schedule(
            0.0, network.send_multicast, 0, group, "data", None, 255, 1000)
    network.run()
    times = [time for time, _ in sink.arrivals]
    # Hop 0->1 takes 1; serialization 2 each; propagation 1.
    assert times == [pytest.approx(4.0), pytest.approx(6.0),
                     pytest.approx(8.0)]


def test_queue_drop_traced():
    network = chain(3).build(delivery="hop")
    network.trace.enabled = True
    network.set_link_bandwidth(1, 2, 500.0, queue_limit=1)
    group = network.groups.allocate()
    network.join(2, group)
    for _ in range(4):
        network.scheduler.schedule(
            0.0, network.send_multicast, 0, group, "data", None, 255, 1000)
    network.run()
    drops = network.trace.filter(kind="queue_drop")
    assert len(drops) == 3
    assert network.packets_dropped == 3


# ----------------------------------------------------------------------
# End-to-end congestion experiment
# ----------------------------------------------------------------------

def test_unpaced_burst_overflows_and_srm_recovers():
    outcome = run_congestion_experiment(rate_limit=None, seed=1)
    assert outcome.data_queue_drops > 0
    assert outcome.requests > 0
    assert outcome.repairs > 0
    assert outcome.all_recovered


def test_paced_source_avoids_congestion_entirely():
    outcome = run_congestion_experiment(rate_limit=400.0, seed=1)
    assert outcome.data_queue_drops == 0
    assert outcome.requests == 0
    assert outcome.all_recovered


def test_pacing_tradeoff_is_visible():
    """Pacing costs transmission time but eliminates recovery traffic."""
    unpaced = run_congestion_experiment(rate_limit=None, seed=2)
    paced = run_congestion_experiment(rate_limit=400.0, seed=2)
    assert paced.requests + paced.repairs < \
        unpaced.requests + unpaced.repairs
