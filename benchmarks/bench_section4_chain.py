"""Section IV-A: deterministic chain recovery.

Regenerates the chain analysis: exactly one request and one repair, and
the farthest node recovering in *less* than one of its own RTTs — faster
than any unicast scheme, whose floor is one RTT.
"""

from repro.analysis.chain import chain_recovery_schedule, \
    unicast_recovery_delay
from repro.core.config import SrmConfig
from repro.experiments.common import run_rounds
from repro.experiments.figure6 import chain_scenario

from conftest import scale


def run_chain_section4(chain_length: int, failure_hops: int):
    scenario = chain_scenario(failure_hops, chain_length)
    config = SrmConfig(c1=1.0, c2=0.0, d1=1.0, d2=0.0)
    outcome = run_rounds(scenario, config=config, rounds=1, seed=0)[0]
    schedule = chain_recovery_schedule(chain_length, failure_hops)
    return outcome, schedule


def test_section4_chain(once):
    chain_length = scale(50, 100)
    failure_hops = 5
    outcome, schedule = once(run_chain_section4, chain_length, failure_hops)

    farthest = chain_length - 1
    print()
    print(f"Section IV-A chain, N={chain_length}, failure at hop "
          f"{failure_hops}:")
    print(f"  requests={outcome.requests} repairs={outcome.repairs}")
    print(f"  farthest-node delay/RTT: simulated="
          f"{outcome.last_member_ratio:.3f} "
          f"analytic={schedule.farthest_delay_ratio():.3f} "
          f"unicast-floor=1.000")

    # Paper claims: one request, one repair, sub-RTT recovery at the tail.
    assert outcome.requests == 1
    assert outcome.repairs == 1
    assert outcome.recovered
    assert abs(outcome.last_member_ratio
               - schedule.farthest_delay_ratio()) < 1e-6
    assert outcome.last_member_ratio < 1.0
    assert schedule.recovery_delay(farthest) < \
        unicast_recovery_delay(farthest)
