"""Discrete-event simulation kernel.

The kernel is deliberately small: an event heap (:class:`EventScheduler`),
cancellable/reschedulable timers (:class:`Timer`), a seeded random source
(:class:`RandomSource`), a structured trace recorder (:class:`Trace`), and
process-wide performance counters (:mod:`repro.sim.perf`). Everything else
in the reproduction (links, protocol agents, applications) is built as
callbacks scheduled on this kernel.

Time is a float in abstract "units"; the paper normalizes one unit to the
propagation delay of one link, and so do all experiment drivers.
"""

from repro.sim import perf
from repro.sim.perf import PerfCounters
from repro.sim.scheduler import Event, EventScheduler, SimulationError
from repro.sim.timers import Timer, TimerState
from repro.sim.rng import RandomSource
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Event",
    "EventScheduler",
    "PerfCounters",
    "SimulationError",
    "Timer",
    "TimerState",
    "RandomSource",
    "Trace",
    "TraceRecord",
    "perf",
]
