"""Cancellable, reschedulable timers on top of the event scheduler.

SRM's request and repair machinery is timer-heavy: timers are set from
random intervals, reset (backed off) when a duplicate request is heard,
and cancelled when a repair arrives. :class:`Timer` wraps that lifecycle
so protocol code never touches raw events.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Protocol, runtime_checkable


@runtime_checkable
class ScheduledEvent(Protocol):
    """A cancellable handle returned by a scheduler's ``schedule``."""

    __slots__ = ()

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""


@runtime_checkable
class TimerScheduler(Protocol):
    """The structural interface :class:`Timer` (and agents) need.

    A clock plus relative one-shot scheduling — satisfied by the
    discrete-event :class:`repro.sim.scheduler.EventScheduler` and by the
    real-time :class:`repro.live.scheduler.LiveScheduler`. Protocol code
    written against this interface runs unchanged on either engine.
    """

    __slots__ = ()

    @property
    def now(self) -> float:
        """Current time (simulated or session wall-clock seconds)."""
        ...

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` ``delay`` units from now."""
        ...


class TimerState(enum.Enum):
    """Lifecycle of a :class:`Timer`."""

    IDLE = "idle"          # never started, or consumed after firing
    PENDING = "pending"    # scheduled and waiting to fire
    FIRED = "fired"        # callback has run
    CANCELLED = "cancelled"


class Timer:
    """A one-shot timer that can be restarted, rescheduled and cancelled.

    The callback receives no arguments; bind context with a closure or a
    bound method. ``expiry`` is the absolute simulated time at which the
    timer will fire (or fired / was going to fire).
    """

    __slots__ = ("_scheduler", "_callback", "name", "_event", "_state",
                 "expiry", "set_at")

    def __init__(self, scheduler: TimerScheduler,
                 callback: Callable[[], Any], name: str = "") -> None:
        self._scheduler = scheduler
        self._callback = callback
        self.name = name
        self._event: Optional[ScheduledEvent] = None
        self._state = TimerState.IDLE
        self.expiry: Optional[float] = None
        self.set_at: Optional[float] = None

    @property
    def state(self) -> TimerState:
        return self._state

    @property
    def pending(self) -> bool:
        return self._state is TimerState.PENDING

    def start(self, delay: float) -> None:
        """Start (or restart) the timer to fire ``delay`` from now."""
        self.cancel()
        self.set_at = self._scheduler.now
        self.expiry = self._scheduler.now + delay
        self._event = self._scheduler.schedule(delay, self._fire)
        self._state = TimerState.PENDING

    def reschedule(self, delay: float) -> None:
        """Move a pending timer to fire ``delay`` from now.

        Unlike :meth:`start`, this preserves ``set_at`` (the time the
        timer was first armed), which SRM uses to measure request/repair
        delay across backoffs.
        """
        if self._state is not TimerState.PENDING:
            self.start(delay)
            return
        first_set = self.set_at
        assert self._event is not None
        self._event.cancel()
        self.expiry = self._scheduler.now + delay
        self._event = self._scheduler.schedule(delay, self._fire)
        self.set_at = first_set

    def cancel(self) -> None:
        """Cancel the timer if pending; otherwise a no-op."""
        if self._event is not None and self._state is TimerState.PENDING:
            self._event.cancel()
            self._state = TimerState.CANCELLED
        self._event = None

    def time_remaining(self) -> float:
        """Time until expiry; zero if not pending."""
        if self._state is not TimerState.PENDING or self.expiry is None:
            return 0.0
        return max(0.0, self.expiry - self._scheduler.now)

    def _fire(self) -> None:
        self._state = TimerState.FIRED
        self._event = None
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timer {self.name!r} {self._state.value} expiry={self.expiry}>"
