"""Unit tests for SRM configuration."""

import math

import pytest

from repro.core.config import (
    AdaptiveBounds,
    SrmConfig,
    TimerParams,
    log10_group,
)


def test_fixed_parameter_defaults_match_the_paper():
    # Section V: C1 = C2 = 2, D1 = D2 = log10(G).
    config = SrmConfig()
    params = config.fixed_params(group_size=100)
    assert params.c1 == 2.0
    assert params.c2 == 2.0
    assert params.d1 == pytest.approx(2.0)
    assert params.d2 == pytest.approx(2.0)


def test_log10_rule_floors_at_one():
    assert log10_group(2) == 1.0
    assert log10_group(5) == 1.0
    assert log10_group(1000) == pytest.approx(3.0)


def test_explicit_d1_d2_override_log_rule():
    config = SrmConfig(d1=7.0, d2=9.0)
    params = config.fixed_params(group_size=100)
    assert params.d1 == 7.0
    assert params.d2 == 9.0


def test_backoff_factor_switches_with_adaptive():
    # Section VII-A: "we use a multiplicative factor of 3 rather than 2".
    assert SrmConfig().backoff_factor() == 2.0
    assert SrmConfig(adaptive=True).backoff_factor() == 3.0


def test_copy_with_overrides():
    config = SrmConfig(c1=5.0)
    clone = config.copy(c2=9.0)
    assert clone.c1 == 5.0
    assert clone.c2 == 9.0
    assert config.c2 == 2.0


def test_adaptive_bounds_initial_params():
    bounds = AdaptiveBounds()
    params = bounds.initial_params(group_size=1000)
    assert params.c1 == 2.0
    assert params.c2 == 2.0
    assert params.d1 == pytest.approx(3.0)
    assert params.d2 == pytest.approx(3.0)


def test_d1_cap_defaults_to_initial_value():
    bounds = AdaptiveBounds()
    assert bounds.effective_d1_max(1000) == pytest.approx(3.0)
    explicit = AdaptiveBounds(d1_max=5.5)
    assert explicit.effective_d1_max(1000) == 5.5


def test_timer_params_copy_is_independent():
    params = TimerParams(c1=1, c2=2, d1=3, d2=4)
    clone = params.copy()
    clone.c1 = 99
    assert params.c1 == 1


def test_holddown_factor_default():
    # Section III-B: ignore requests for 3 * d after a repair.
    assert SrmConfig().holddown_factor == 3.0
