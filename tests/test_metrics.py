"""The repro.metrics observability layer.

Covers the metric primitives, the streaming collector's agreement with
the offline per-loss-event analysis, golden headline snapshots for the
figure3/figure8 seeds, JSON bundle round-trips, and the regression
comparison used by ``repro compare``.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    ExperimentSpec,
    choose_scenario,
    run_experiment,
)
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure8 import run_figure8
from repro.metrics import (
    BUNDLE_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunMetrics,
    collect_from_trace,
    compare_bundles,
    load_bundle,
    save_bundle,
)


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------


def test_counter_accumulates_and_rejects_negative_increments():
    counter = Counter("requests")
    counter.inc()
    counter.inc(3)
    assert counter.value == 4
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_tracks_last_set_value_and_high_water_mark():
    gauge = Gauge("heap")
    gauge.set(7)
    gauge.set(3)
    assert gauge.value == 3
    gauge.high(9)
    gauge.high(4)
    assert gauge.value == 9


def test_histogram_quantiles_match_sorted_data():
    histogram = Histogram("delay")
    for value in (5.0, 1.0, 3.0, 2.0, 4.0):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.quantile(0.5) == 3.0
    assert histogram.quantile(1.0) == 5.0
    assert histogram.mean() == 3.0
    assert histogram.summary()["max"] == 5.0
    assert Histogram("empty").summary() == {
        "count": 0, "mean": None, "p50": None, "p90": None, "max": None}


def test_registry_namespaces_and_snapshots():
    registry = MetricsRegistry()
    registry.counter("a").inc(2)
    registry.gauge("b").set(9)
    registry.histogram("c").observe(1.5)
    snap = registry.as_dict()
    assert snap["counters"]["a"] == 2
    assert snap["gauges"]["b"] == 9
    assert snap["histograms"]["c"]["count"] == 1
    # Same name returns the same instrument, not a fresh one.
    assert registry.counter("a") is registry.counter("a")


# ----------------------------------------------------------------------
# Collector vs offline analysis
# ----------------------------------------------------------------------


def _scenario(seed: int):
    from repro.sim.rng import RandomSource
    from repro.topology.btree import balanced_tree

    return choose_scenario(balanced_tree(60, 4), session_size=12,
                           rng=RandomSource(seed))


def _run_one(seed: int = 2):
    return run_experiment(ExperimentSpec(scenario=_scenario(seed),
                                         rounds=3, seed=seed,
                                         experiment="unit"))


def test_streaming_collector_matches_offline_outcomes():
    """The collector's counts must agree with RoundOutcome's, which are
    computed independently by the offline analyze_loss_event path."""
    result = _run_one()
    bundle = result.metrics
    assert bundle.rounds == len(result.outcomes)
    assert bundle.requests == sum(o.requests for o in result.outcomes)
    assert bundle.repairs == sum(o.repairs for o in result.outcomes)
    assert bundle.duplicate_requests == \
        sum(o.duplicate_requests for o in result.outcomes)
    assert bundle.duplicate_repairs == \
        sum(o.duplicate_repairs for o in result.outcomes)
    offline_last = sorted(o.last_member_ratio for o in result.outcomes
                          if o.last_member_ratio is not None)
    assert sorted(bundle.last_member_ratios) == \
        pytest.approx(offline_last)


def test_collect_from_trace_reconstructs_streaming_bundle():
    """Offline reconstruction from a trace equals the streaming pass."""
    from repro.experiments.common import LossRecoverySimulation

    simulation = LossRecoverySimulation(_scenario(5), seed=5)
    simulation.run_round()
    streaming = simulation.last_round_metrics
    offline = collect_from_trace(
        simulation.network.trace,
        control_packet_size=simulation.config.control_packet_size)
    assert offline.requests == streaming.requests
    assert offline.repairs == streaming.repairs
    assert offline.timers == streaming.timers
    assert offline.control_packets == streaming.control_packets
    assert offline.recovery_ratios == \
        pytest.approx(streaming.recovery_ratios)


def test_consistency_check_runs_under_check_mode(monkeypatch):
    """SRM_CHECK=1 verifies the streaming bundle against the trace every
    round; a healthy run must pass without raising."""
    monkeypatch.setenv("SRM_CHECK", "1")
    result = _run_one(seed=9)
    assert result.metrics is not None
    assert result.metrics.rounds == 3


# ----------------------------------------------------------------------
# Golden headline snapshots (reduced-scale figure3/figure8 seeds)
# ----------------------------------------------------------------------

FIGURE3_HEADLINE = {
    "control_bytes_per_member": 78.46153846153847,
    "duplicate_repairs_mean": 0.0,
    "duplicate_requests_mean": 0.125,
    "last_member_ratio_max": 2.5619801467002024,
    "last_member_ratio_p50": 1.7606185159519707,
    "last_member_ratio_p90": 2.354473168026529,
    "loss_events": 8.0,
    "recovery_ratio_max": 3.5361686338888463,
    "recovery_ratio_p50": 1.3253169071726416,
    "recovery_ratio_p90": 2.6305086967384192,
    "repairs_mean": 1.0,
    "request_ratio_max": 1.9647084284203995,
    "request_ratio_p50": 0.8389130957626548,
    "request_ratio_p90": 1.8397574464174287,
    "requests_mean": 1.125,
}

FIGURE8_HEADLINE = {
    "control_bytes_per_member": 255.0,
    "duplicate_repairs_mean": 0.16666666666666666,
    "duplicate_requests_mean": 0.6666666666666666,
    "last_member_ratio_max": 1.2173176232546883,
    "last_member_ratio_p50": 0.4052856874505085,
    "last_member_ratio_p90": 0.9690036193461787,
    "loss_events": 6.0,
    "recovery_ratio_max": 9.738540986037503,
    "recovery_ratio_p50": 0.5930078137169964,
    "recovery_ratio_p90": 1.6230901643395839,
    "repairs_mean": 1.1666666666666667,
    "request_ratio_max": 7.682228801471659,
    "request_ratio_p50": 0.2132518637044445,
    "request_ratio_p90": 1.0856753231946144,
    "requests_mean": 1.6666666666666667,
}


def _assert_headline(actual: dict, expected: dict) -> None:
    assert set(actual) == set(expected)
    for key, value in expected.items():
        assert actual[key] == pytest.approx(value, rel=1e-12), key


def test_figure3_metrics_headline_golden():
    result = run_figure3(sizes=(10, 20), sims=4, seed=3)
    _assert_headline(result.metrics.headline(), FIGURE3_HEADLINE)


def test_figure8_metrics_headline_golden():
    result = run_figure8(c2_values=(0, 20), hops_values=(1,), sims=3,
                         num_nodes=120, session_size=20, seed=8)
    _assert_headline(result.metrics.headline(), FIGURE8_HEADLINE)


# ----------------------------------------------------------------------
# Bundle persistence and comparison
# ----------------------------------------------------------------------


def test_bundle_json_round_trip(tmp_path):
    bundle = _run_one(seed=3).metrics
    path = save_bundle(bundle, tmp_path / "bundle.json")
    loaded = load_bundle(path)
    assert loaded.to_dict() == bundle.to_dict()
    assert loaded.to_dict()["schema"] == BUNDLE_SCHEMA
    assert loaded.headline() == pytest.approx(bundle.headline())


def test_bundle_merge_is_associative_over_counts():
    first = _run_one(seed=3).metrics
    second = _run_one(seed=4).metrics
    merged = RunMetrics.merged([first, second], experiment="unit")
    assert merged.rounds == first.rounds + second.rounds
    assert merged.requests == first.requests + second.requests
    assert merged.loss_events == first.loss_events + second.loss_events
    assert sorted(merged.recovery_ratios) == sorted(
        first.recovery_ratios + second.recovery_ratios)


def test_compare_flags_only_regressions_beyond_threshold():
    baseline = _run_one(seed=3).metrics
    same = compare_bundles(baseline, baseline, threshold=0.10)
    assert same.ok and not same.regressions

    worse = RunMetrics.from_dict(baseline.to_dict())
    worse.recovery_ratios = [r * 1.5 for r in worse.recovery_ratios]
    report = compare_bundles(baseline, worse, threshold=0.10)
    assert not report.ok
    regressed = {delta.key for delta in report.regressions}
    assert "recovery_ratio_p50" in regressed
    assert "requests_mean" not in regressed
    assert "REGRESSION" in report.format()

    # A 1.5x blow-up passes under a loose-enough threshold.
    loose = compare_bundles(baseline, worse, threshold=10.0)
    assert loose.ok


def test_compare_treats_new_nan_or_missing_as_regression():
    baseline = _run_one(seed=3).metrics
    broken = RunMetrics.from_dict(baseline.to_dict())
    broken.recovery_ratios = []
    report = compare_bundles(baseline, broken, threshold=0.10)
    assert not report.ok
