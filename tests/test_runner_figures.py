"""End-to-end runner acceptance: figure sweeps through the runner.

The acceptance bar for the execution engine: ``figure4`` at reduced
scale must produce byte-identical series output for ``--jobs 1``,
``--jobs 4``, and a second cached run — and the cached run's manifest
must report 100% cache hits.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure4 import run_figure4
from repro.runner import ExperimentRunner, ResultCache, read_manifest

REDUCED = dict(sizes=(20,), sims=3, seed=4)


def test_figure4_jobs1_jobs4_and_cached_run_identical(tmp_path):
    serial = run_figure4(runner=ExperimentRunner(jobs=1), **REDUCED)
    parallel = run_figure4(runner=ExperimentRunner(jobs=4), **REDUCED)
    assert parallel.format_table() == serial.format_table()

    cache = ResultCache(tmp_path / "cache")
    warm_manifest = tmp_path / "warm.jsonl"
    warm = run_figure4(runner=ExperimentRunner(
        jobs=4, cache=cache, manifest_path=str(warm_manifest)), **REDUCED)
    assert warm.format_table() == serial.format_table()
    warm_rows = read_manifest(warm_manifest, "task")
    assert all(row["cache"] == "miss" for row in warm_rows)

    cached_manifest = tmp_path / "cached.jsonl"
    cached = run_figure4(runner=ExperimentRunner(
        jobs=1, cache=cache, manifest_path=str(cached_manifest)), **REDUCED)
    assert cached.format_table() == serial.format_table()
    rows = read_manifest(cached_manifest, "task")
    assert rows and all(row["cache"] == "hit" for row in rows)
    summary, = read_manifest(cached_manifest, "summary")
    assert summary["cache_hits"] == len(rows)
    assert summary["cache_misses"] == 0


def test_figure4_default_runner_matches_explicit_serial():
    assert run_figure4(**REDUCED).format_table() == \
        run_figure4(runner=ExperimentRunner(jobs=1), **REDUCED).format_table()


def test_cache_does_not_leak_between_different_sweep_points(tmp_path):
    # Same scenarios, different seeds: every task must be a fresh miss.
    cache = ResultCache(tmp_path / "cache")
    run_figure4(runner=ExperimentRunner(cache=cache), **REDUCED)
    runner = ExperimentRunner(cache=cache)
    run_figure4(runner=runner, sizes=(20,), sims=3, seed=5)
    assert all(report.cache == "miss" for report in runner.reports)


@pytest.mark.slow
def test_figure4_full_scale_parallel_parity():
    """Full-sweep parity check, excluded from tier-1 by the slow marker."""
    full = dict(sizes=(20, 40, 60), sims=8, seed=4)
    serial = run_figure4(runner=ExperimentRunner(jobs=1), **full)
    parallel = run_figure4(runner=ExperimentRunner(jobs=2), **full)
    assert parallel.format_table() == serial.format_table()
