"""Tree-topology analysis (Section IV-C).

Bad nodes are classified by their tree distance (level) below the level-0
node A just downstream of the congested link. A's request reaches a
level-i node at most ``(C1+C2)*d_s + i`` after A's detection (d_s = A's
distance to the source), while the level-i node's own timer cannot expire
before ``i + C1*(d_s + i)`` after A's detection. Hence level i is
*always* suppressed by A's request when

    (C1 + C2) * d_s + i <= i + C1 * (d_s + i)
      <=>  C2 * d_s <= C1 * i
      <=>  i >= (C2 / C1) * d_s

— "the smaller the ratio C2/C1, the fewer the number of levels that could
be involved in duplicate requests", and duplicates shrink when the source
is close to the congested link (small d_s).
"""

from __future__ import annotations

import math


def always_suppressed_level(level: int, c1: float, c2: float,
                            source_distance: float) -> bool:
    """True when a level-``level`` node can never send a duplicate
    request, whatever the random draws."""
    if level < 0:
        raise ValueError("levels are non-negative")
    if c1 <= 0:
        return False
    return c1 * level >= c2 * source_distance


def max_duplicate_request_level(c1: float, c2: float,
                                source_distance: float) -> int:
    """The deepest level that *could* produce a duplicate request.

    Level 0 is the node adjacent to the congested link; it always sends
    unless someone else's request arrives first. Returns -1 when even
    level 0 cannot duplicate (degenerate c2 = 0 with a single level-0
    node).
    """
    if c1 <= 0:
        raise ValueError("c1 must be positive")
    threshold = c2 * source_distance / c1
    deepest = math.ceil(threshold) - 1
    if math.isclose(threshold, round(threshold)):
        deepest = int(round(threshold)) - 1
    return max(-1, deepest)
