"""Configuration for SRM agents.

Every constant in the paper is surfaced here: the request timer parameters
C1, C2 and repair timer parameters D1, D2 (Section III-B), the backoff
multiplier, the 3·d repair hold-down, the adaptive-algorithm constants of
Figs. 10–11, and the session-message budget of Section III-A.

The paper's "fixed timer" simulations use C1 = C2 = 2 and
D1 = D2 = log10(G); pass ``d1=None, d2=None`` (the default) to get the
group-size-dependent log rule at runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass
class TimerParams:
    """One member's current request/repair timer parameters.

    Request timers are drawn uniformly from ``[c1*d, (c1+c2)*d]`` where d
    is the estimated one-way delay to the source of the missing data;
    repair timers from ``[d1*d, (d1+d2)*d]`` with d the delay to the
    requester.
    """

    c1: float
    c2: float
    d1: float
    d2: float

    def copy(self) -> "TimerParams":
        return replace(self)


@dataclass
class AdaptiveBounds:
    """Initial values and clamps for the adaptive algorithm (Fig. 11).

    The published figure with the exact table is lost from the scraped
    text; these values are reconstructed so that (a) the initial values
    equal the fixed-parameter settings and (b) the Figs. 12-14 shapes
    reproduce (duplicates driven to ~1 within ~40 rounds).
    """

    c1_init: float = 2.0
    c1_min: float = 0.5
    c1_max: float = 2.0
    c2_init: float = 2.0
    c2_min: float = 1.0
    c2_max: float = 200.0
    # d1/d2 initial values of None mean log10(G), evaluated per session.
    d1_init: Optional[float] = None
    d1_min: float = 0.5
    #: None caps D1 at its initial value: the deterministic offset may only
    #: shrink (for habitual repliers) and drift back up, never inflate the
    #: repair latency — inflating D1 delays every repair and provokes
    #: request retransmissions, a positive feedback the clamp forecloses.
    d1_max: Optional[float] = None
    d2_init: Optional[float] = None
    d2_min: float = 1.0
    d2_max: float = 200.0

    def initial_params(self, group_size: int) -> TimerParams:
        log_g = log10_group(group_size)
        d1 = self.d1_init if self.d1_init is not None else log_g
        d2 = self.d2_init if self.d2_init is not None else log_g
        return TimerParams(c1=self.c1_init, c2=self.c2_init, d1=d1, d2=d2)

    def effective_d1_max(self, group_size: int) -> float:
        if self.d1_max is not None:
            return self.d1_max
        return self.initial_params(group_size).d1


def log10_group(group_size: int) -> float:
    """The paper's D1 = D2 = log10(G) rule, floored to stay positive."""
    return max(1.0, math.log10(max(group_size, 2)))


@dataclass
class SrmConfig:
    """All knobs for one SRM agent."""

    # ------------------------------------------------------------------
    # Fixed timer parameters (Section III-B / Section V).
    # ------------------------------------------------------------------
    c1: float = 2.0
    c2: float = 2.0
    #: None selects the paper's log10(G) rule at runtime.
    d1: Optional[float] = None
    d2: Optional[float] = None

    #: Multiplicative request-timer backoff. The base algorithm doubles
    #: (Section III-B); the adaptive simulations use 3 (Section VII-A).
    request_backoff: float = 2.0

    #: Ignore requests for data for this multiple of the one-way delay to
    #: the relevant source after sending/receiving a repair (Section III-B).
    holddown_factor: float = 3.0

    #: Treat a request overheard for unknown data as loss detection
    #: (enter the recovery state machine in the backed-off interval).
    detect_loss_from_requests: bool = True

    #: Footnote 1's heuristic: after a backoff, ignore further duplicate
    #: requests until halfway to the new expiry. Disable for ablations.
    ignore_backoff_enabled: bool = True

    #: Sources answer requests for their own data like any other member
    #: (they always "have" it).
    #: Upper bound on request retransmissions per loss (safety valve so a
    #: simulation with a partitioned source terminates).
    max_request_rounds: int = 16

    # ------------------------------------------------------------------
    # Adaptive algorithm (Section VII-A, Figs. 9-11).
    # ------------------------------------------------------------------
    adaptive: bool = False
    adaptive_bounds: AdaptiveBounds = field(default_factory=AdaptiveBounds)
    #: Target average number of duplicates ("the predefined threshold is
    #: one duplicate request").
    ave_dups_target: float = 1.0
    #: Target average request/repair delay in units of RTT.
    ave_delay_target: float = 1.0
    #: EWMA weight for ave_dup_req / ave_req_delay etc. (Fig. 10 caption).
    ewma_weight: float = 0.1
    #: "Further from the source" factor for the deterministic-suppression
    #: C1 reduction: reported distance > 1.5x ours.
    far_requestor_factor: float = 1.5
    #: Adjustment step sizes (the 0.05 / 0.1 / 0.5 of Fig. 10).
    c1_increase: float = 0.1
    c1_decrease: float = 0.05
    c2_increase: float = 0.5
    c2_decrease: float = 0.5
    #: Backoff multiplier used when the adaptive algorithm is on.
    adaptive_request_backoff: float = 3.0

    # ------------------------------------------------------------------
    # Session messages (Section III-A).
    # ------------------------------------------------------------------
    session_enabled: bool = False
    #: Fraction of the session bandwidth given to session messages.
    session_bandwidth_fraction: float = 0.05
    #: Aggregate session bandwidth in size-units per time-unit; together
    #: with the fraction and message size this sets the reporting interval
    #: (the vat scaling rule: interval grows linearly with group size).
    session_data_bandwidth: float = 8000.0
    session_message_size: int = 80
    session_min_interval: float = 5.0
    #: LBRM-style variable heartbeat (Section VIII): report quickly right
    #: after sending data (so receivers detect tail losses sooner), then
    #: back off exponentially to the normal vat interval — same long-run
    #: message budget, much faster worst-case detection.
    session_variable_heartbeat: bool = False
    heartbeat_min_interval: float = 1.0
    heartbeat_growth: float = 2.0

    #: Use true shortest-path delays for host-to-host distance instead of
    #: session-message estimates (the experiments assume converged
    #: estimates; the session machinery itself is exercised by tests).
    distance_oracle: bool = True
    #: Distance assumed for members we have no estimate for.
    default_distance: float = 1.0
    #: Late-join policy: adopt each stream at the first packet heard
    #: instead of recovering its history. The right mode for live
    #: substreams (Section IX-C layering); off for wb-style shared state.
    adopt_streams: bool = False

    # ------------------------------------------------------------------
    # Local recovery (Section VII-B).
    # ------------------------------------------------------------------
    #: TTL used for requests; None means global scope (DEFAULT_TTL).
    request_ttl: Optional[int] = None
    #: "one-step" | "two-step" | None (global repairs).
    local_repair_mode: Optional[str] = None
    #: Administrative scope zone for requests (Section VII-B1): when the
    #: member believes both the loss neighborhood and a repair source lie
    #: inside the named zone, requests carry it, and repairs answer with
    #: the same scope. None means unscoped requests.
    request_scope_zone: Optional[str] = None

    # ------------------------------------------------------------------
    # Transmission details (Sections III-C, III-E).
    # ------------------------------------------------------------------
    data_packet_size: int = 1000
    control_packet_size: int = 60
    #: Peak send rate in size-units per time-unit; None disables the
    #: token-bucket pacer. When set, sends drain in wb's priority order:
    #: current-page requests/repairs, then new data, then previous-page
    #: control traffic.
    rate_limit: Optional[float] = None
    #: Token-bucket depth (burst size) in size-units.
    rate_limit_depth: float = 4000.0
    #: Parity FEC block size k (one XOR parity packet per k data
    #: packets); None disables FEC. Single in-block losses are then
    #: reconstructed locally with no request/repair exchange.
    fec_block: Optional[int] = None

    def effective_d1(self, group_size: int) -> float:
        return self.d1 if self.d1 is not None else log10_group(group_size)

    def effective_d2(self, group_size: int) -> float:
        return self.d2 if self.d2 is not None else log10_group(group_size)

    def fixed_params(self, group_size: int) -> TimerParams:
        """The TimerParams a non-adaptive agent uses for the whole run."""
        return TimerParams(c1=self.c1, c2=self.c2,
                           d1=self.effective_d1(group_size),
                           d2=self.effective_d2(group_size))

    def backoff_factor(self) -> float:
        return (self.adaptive_request_backoff if self.adaptive
                else self.request_backoff)

    def copy(self, **overrides) -> "SrmConfig":
        return replace(self, **overrides)
