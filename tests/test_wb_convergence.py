"""Property test: whiteboard convergence under arbitrary loss.

Whatever the mix of draw/delete/clear operations, drawers, and data
loss on a link, every member's rendering of the page converges to the
same sequence once recovery quiesces — SRM's eventual delivery plus
wb's idempotent, timestamp-ordered operations.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SrmConfig
from repro.net.link import BernoulliDropFilter
from repro.sim.rng import RandomSource
from repro.topology.random_tree import random_labeled_tree
from repro.wb import DrawOp, DrawType, Whiteboard


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_boards_converge_under_loss(data):
    seed = data.draw(st.integers(0, 100_000), label="seed")
    rng = RandomSource(seed)
    board_count = data.draw(st.integers(3, 8), label="boards")
    spec = random_labeled_tree(board_count, rng)
    network = spec.build()
    group = network.groups.allocate("wb")
    config = SrmConfig(session_enabled=True, session_min_interval=8.0)
    boards = []
    for node in range(board_count):
        board = Whiteboard(config, rng.fork(f"b{node}"))
        board.join(network, node, group)
        boards.append(board)
    # One lossy link eating a third of the data packets.
    loss_rate = data.draw(st.sampled_from([0.0, 0.2, 0.4]), label="loss")
    network.add_drop_filter(*rng.choice(spec.edges), BernoulliDropFilter(
        loss_rate, rng.fork("loss"),
        predicate=lambda p: p.kind == "srm-data"))

    op_count = data.draw(st.integers(2, 7), label="ops")
    op_kinds = [data.draw(st.sampled_from(["draw", "delete", "clear"]),
                          label=f"op{i}") for i in range(op_count)]

    page_box = {}

    def script() -> None:
        page = boards[0].create_page()
        page_box["page"] = page
        for board in boards:
            board.view_page(page)
        drawn = []
        when = 1.0
        for kind in op_kinds:
            drawer = boards[rng.randint(0, board_count - 1)]
            if kind == "draw" or not drawn:
                def do_draw(drawer=drawer, when=when):
                    drawn.append(drawer.draw(page, DrawOp(
                        DrawType.LINE, ((0.0, 0.0), (when, when)),
                        color=f"c{len(drawn)}")))
                network.scheduler.schedule(when, do_draw)
            elif kind == "delete":
                def do_delete(drawer=drawer):
                    if drawn:
                        drawer.delete(page, drawn[0])
                network.scheduler.schedule(when, do_delete)
            else:
                network.scheduler.schedule(
                    when, lambda drawer=drawer: drawer.clear(page))
            when += 3.0

    network.scheduler.schedule(0.0, script)
    network.run(until=2500.0)

    page = page_box["page"]
    reference = [(op.color, op.timestamp)
                 for op in boards[0].render(page)]
    for board in boards[1:]:
        view = [(op.color, op.timestamp) for op in board.render(page)]
        assert view == reference
    # Every board also holds every op (eventual delivery, not just
    # eventually-equal renderings).
    reference_count = boards[0].op_count(page)
    for board in boards:
        assert board.op_count(page) == reference_count
