"""Figure 8: delay/duplicates tradeoff for a sparse session in a tree.

Same sweep as Fig. 7, but on a 1000-node degree-4 tree with a session of
100 randomly-placed members. For sparse sessions, small C2 gives
"unacceptably large numbers of requests"; increasing C2 reduces the
duplicates at a moderate cost in delay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runner import ExperimentRunner

from repro.core.config import SrmConfig
from repro.experiments.common import Scenario, SeriesPoint, run_rounds
from repro.experiments.figure7 import Figure7Result, drop_edge_at_hops
from repro.sim.rng import RandomSource
from repro.topology.btree import balanced_tree

DEFAULT_C2_VALUES = (0, 1, 2, 3, 5, 8, 12, 20, 35, 60, 100)
DEFAULT_HOPS = (1, 2, 3, 4)
NUM_NODES = 1000
DEGREE = 4
SESSION_SIZE = 100


def run_figure8(c2_values: Sequence[float] = DEFAULT_C2_VALUES,
                hops_values: Sequence[int] = DEFAULT_HOPS,
                sims_per_value: int = 20, num_nodes: int = NUM_NODES,
                session_size: int = SESSION_SIZE, c1: float = 2.0,
                seed: int = 8,
                runner: Optional["ExperimentRunner"] = None) -> Figure7Result:
    from repro.runner import ExperimentRunner

    spec = balanced_tree(num_nodes, DEGREE)
    rng = RandomSource(seed)
    members = sorted(rng.sample(range(num_nodes), session_size))
    source = rng.choice(members)
    runner = runner if runner is not None else ExperimentRunner()
    sweep = []  # (hops, c2, task kwargs) across both loops
    for hops in hops_values:
        drop_edge = drop_edge_at_hops(spec, source, hops, members)
        scenario = Scenario(spec=spec, members=members, source=source,
                            drop_edge=drop_edge)
        for c2 in c2_values:
            sweep.append((hops, c2, dict(
                scenario=scenario, config=SrmConfig(c1=c1, c2=float(c2)),
                rounds=sims_per_value,
                seed=(seed * 131071 + hops * 7919 + int(c2) * 613))))
    outcome_lists = runner.map("figure8", run_rounds,
                               [kwargs for _, _, kwargs in sweep])
    series = {hops: [] for hops in hops_values}
    for (hops, c2, _), outcomes in zip(sweep, outcome_lists):
        point = SeriesPoint(x=c2)
        for outcome in outcomes:
            point.add("requests", outcome.requests)
            point.add("delay", outcome.closest_request_ratio)
        series[hops].append(point)
    result = Figure7Result(num_nodes=num_nodes, c1=c1, series=series,
                           label="Figure 8 (sparse session)")
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run_figure8(sims_per_value=10).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
