"""Tests for the scenario fuzzer (repro.oracle.fuzz) and its CLI.

The pinned seeds below are part of the acceptance contract: campaign
seed 7 is clean on main, and case index 10 of that campaign is known to
catch the injected no-holddown bug (validated against the current
generator). If the generator changes, re-derive the pinned indexes.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.oracle.fuzz import (
    CASE_SEED_STRIDE,
    case_seed,
    format_fuzz_report,
    generate_case,
    run_fuzz,
    run_fuzz_case,
    shrink_case,
)
from repro.runner import ExperimentRunner

#: Campaign (seed=7) case index known to trip the injected bug.
CAUGHT_INDEX = 10
CAUGHT_SEED = case_seed(7, CAUGHT_INDEX)


def serial_runner():
    return ExperimentRunner(jobs=1)


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------

def test_case_generation_is_deterministic_and_pure_data():
    for index in range(8):
        seed = case_seed(3, index)
        case = generate_case(seed)
        assert case == generate_case(seed)
        # Pure JSON data: survives a round-trip unchanged, so cases can
        # be shipped to worker processes and printed in reports.
        assert json.loads(json.dumps(case)) == case
        assert case["case_seed"] == seed
        assert case["source"] in case["members"]
        assert all(m < case["nodes"] for m in case["members"])
        assert case["packets"] > len(case["data_drops"])


def test_case_seed_spacing_makes_each_case_standalone():
    """Running a 1-round campaign at a failing case's seed regenerates
    exactly that case (the reproduce instruction in reports)."""
    campaign_case = generate_case(case_seed(7, 4))
    standalone = generate_case(case_seed(campaign_case["case_seed"], 0))
    assert standalone == campaign_case
    assert case_seed(7, 4) == 7 + 4 * CASE_SEED_STRIDE


# ----------------------------------------------------------------------
# Case execution
# ----------------------------------------------------------------------

def test_clean_campaign_has_no_failures():
    outcome = run_fuzz(rounds=10, seed=7, runner=serial_runner())
    assert outcome["failures"] == []
    assert "0 violations" in format_fuzz_report(outcome)


def test_crash_is_reported_not_raised():
    case = generate_case(case_seed(7, 0))
    case["topology"] = "not-a-topology"
    result = run_fuzz_case(case=case)
    assert result["error"] is not None
    assert "not-a-topology" in result["error"]
    assert result["violations"] == []


# ----------------------------------------------------------------------
# The acceptance scenario: an injected bug is caught, shrunk, reported
# ----------------------------------------------------------------------

def holddown_case():
    case = generate_case(CAUGHT_SEED)
    case["inject"] = "no-holddown"
    return case


def test_injected_holddown_bug_is_caught():
    result = run_fuzz_case(case=holddown_case())
    assert result["error"] is None
    oracles = {violation["oracle"] for violation in result["violations"]}
    assert "repair-holddown" in oracles


def test_injected_bug_shrinks_to_smaller_case():
    case = holddown_case()
    minimized = shrink_case(case, "repair-holddown")
    # Strictly simpler on at least the horizon (greedy shrinking always
    # tries to cut the run right past the violation)...
    assert minimized["horizon"] is not None
    # ...and never more complex anywhere.
    assert len(minimized["members"]) <= len(case["members"])
    assert len(minimized["data_drops"]) <= len(case["data_drops"])
    assert len(minimized["churn"]) <= len(case["churn"])
    assert minimized["packets"] <= case["packets"]
    assert minimized["nodes"] <= case["nodes"]
    # The minimized case still reproduces the violation.
    result = run_fuzz_case(case=minimized)
    assert any(violation["oracle"] == "repair-holddown"
               for violation in result["violations"])


def test_campaign_reports_failure_with_reproducing_seed():
    outcome = run_fuzz(rounds=CAUGHT_INDEX + 1, seed=7,
                       runner=serial_runner(), inject="no-holddown")
    assert outcome["failures"]
    failure = next(f for f in outcome["failures"]
                   if f["index"] == CAUGHT_INDEX)
    assert failure["case_seed"] == CAUGHT_SEED
    assert failure["minimized"] is not None
    report = format_fuzz_report(outcome)
    assert f"--rounds 1 --seed {CAUGHT_SEED}" in report
    assert "repair-holddown" in report
    assert "minimized case:" in report


def test_parallel_campaign_matches_serial():
    serial = run_fuzz(rounds=6, seed=11, runner=serial_runner(),
                      shrink=False)
    parallel = run_fuzz(rounds=6, seed=11,
                        runner=ExperimentRunner(jobs=2), shrink=False)
    assert serial == parallel


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_fuzz_clean_exits_zero(capsys):
    assert cli_main(["fuzz", "--rounds", "3", "--seed", "7"]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_cli_fuzz_injected_bug_exits_nonzero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["fuzz", "--rounds", str(CAUGHT_INDEX + 1), "--seed", "7",
                  "--inject", "no-holddown", "--no-shrink"])
    assert excinfo.value.code == 1
    assert "repair-holddown" in capsys.readouterr().out


def test_cli_check_flag_sets_check_mode(monkeypatch, capsys):
    import os

    # setenv (not delenv) so monkeypatch restores the pre-test state
    # even though the CLI itself mutates os.environ.
    monkeypatch.setenv("SRM_CHECK", "")
    assert cli_main(["robustness", "--rounds", "1", "--check"]) == 0
    assert os.environ.get("SRM_CHECK") == "1"
    capsys.readouterr()
