"""``# lint: ignore[...]`` comment parsing.

Two forms, both carrying explicit rule codes (a bare blanket ignore is
deliberately not supported — suppressions should say what they waive):

* line-level: ``something()  # lint: ignore[SRM001]`` waives the named
  codes for violations reported on that physical line;
* file-level: ``# lint: ignore-file[SRM005]`` on a line of its own
  anywhere in the first :data:`FILE_SCOPE_LINES` lines waives the named
  codes for the whole file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.lint.violations import Violation

_LINE_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9,\s]+)\]")
_FILE_RE = re.compile(r"#\s*lint:\s*ignore-file\[([A-Z0-9,\s]+)\]")

#: File-level ignores must appear near the top, where a reader looks.
FILE_SCOPE_LINES = 10


def _codes(match_text: str) -> frozenset[str]:
    return frozenset(code.strip() for code in match_text.split(",")
                     if code.strip())


@dataclass(slots=True)
class Suppressions:
    """Per-file suppression tables parsed from comments."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    file_wide: frozenset[str] = frozenset()
    #: (line, code) pairs that actually waived a violation.
    used: set[tuple[int, str]] = field(default_factory=set)

    def covers(self, violation: Violation) -> bool:
        if violation.code in self.file_wide:
            self.used.add((0, violation.code))
            return True
        codes = self.by_line.get(violation.line)
        if codes is not None and violation.code in codes:
            self.used.add((violation.line, violation.code))
            return True
        return False


def parse_suppressions(source: str) -> Suppressions:
    table = Suppressions()
    file_codes: set[str] = set()
    for number, line in enumerate(source.splitlines(), start=1):
        file_match = _FILE_RE.search(line)
        if file_match and number <= FILE_SCOPE_LINES:
            file_codes.update(_codes(file_match.group(1)))
            continue
        line_match = _LINE_RE.search(line)
        if line_match:
            table.by_line[number] = _codes(line_match.group(1))
    table.file_wide = frozenset(file_codes)
    return table
