"""Online protocol-invariant checkers and the scenario fuzzer.

``repro.oracle`` watches live simulation runs through the trace stream
and validates the paper's behavioral claims — eventual delivery,
request/repair timer legality, exponential backoff, the 3·d repair
hold-down, and TTL/administrative scoping. Attach the suite to any
network (``SessionOracleSuite.attach``), run, then ``verify()``.

``repro.oracle.fuzz`` hunts for violations at scale: random scenarios
executed in parallel through ``repro.runner``, with greedy shrinking so
failures land minimized and seed-reproducible. See ``docs/oracles.md``.
"""

from repro.oracle.base import (
    EPSILON,
    Oracle,
    OracleViolationError,
    SessionOracleSuite,
    Violation,
    ViolationReport,
    check_mode_enabled,
)
from repro.oracle.checkers import (
    DeliveryConsistencyOracle,
    RepairHolddownOracle,
    RequestTimerOracle,
    SchedulerMonotonicityOracle,
    ScopeTtlOracle,
    SuppressionOracle,
    default_oracles,
    passive_oracles,
)

__all__ = [
    "EPSILON",
    "Oracle",
    "OracleViolationError",
    "SessionOracleSuite",
    "Violation",
    "ViolationReport",
    "check_mode_enabled",
    "DeliveryConsistencyOracle",
    "RepairHolddownOracle",
    "RequestTimerOracle",
    "SchedulerMonotonicityOracle",
    "ScopeTtlOracle",
    "SuppressionOracle",
    "default_oracles",
    "passive_oracles",
]
