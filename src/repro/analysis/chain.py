"""Chain-topology analysis (Section IV-A).

Setup: a unit-delay chain with the source at one end; the first packet is
dropped on the edge ``failure_hops`` hops downstream of the source; the
second packet, sent one unit later, triggers detection. With the
deterministic parameters C1 = D1 = 1 and C2 = D2 = 0, timers are pure
functions of distance and *deterministic suppression* yields exactly one
request (from the bad node adjacent to the failure) and one repair (from
the good node adjacent to the failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ChainRecoverySchedule:
    """The full deterministic timeline of one chain recovery."""

    chain_length: int
    failure_hops: int           # failed edge is (failure_hops-1, failure_hops)
    trigger_gap: float          # second packet sent this much later
    detection_time: Dict[int, float]
    request_time: float         # when the level-0 node multicasts its request
    repair_time: float          # when the adjacent good node multicasts
    recovery_time: Dict[int, float]

    def recovery_delay(self, node: int) -> float:
        return self.recovery_time[node] - self.detection_time[node]

    def delay_ratio(self, node: int) -> float:
        """Recovery delay over the node's RTT to the source."""
        return self.recovery_delay(node) / (2.0 * node)

    @property
    def farthest_node(self) -> int:
        return self.chain_length - 1

    def farthest_delay_ratio(self) -> float:
        return self.delay_ratio(self.farthest_node)


def chain_recovery_schedule(chain_length: int, failure_hops: int,
                            trigger_gap: float = 1.0,
                            c1: float = 1.0,
                            d1: float = 1.0) -> ChainRecoverySchedule:
    """Timeline with deterministic timers (C2 = D2 = 0).

    Source at node 0; failed edge (failure_hops-1, failure_hops); bad
    nodes are failure_hops .. chain_length-1.
    """
    if not 1 <= failure_hops <= chain_length - 1:
        raise ValueError("failed edge outside the chain")
    first_bad = failure_hops
    detection = {node: trigger_gap + node
                 for node in range(first_bad, chain_length)}
    # Level-0 node: timer c1 * distance-to-source, set at detection.
    request_time = detection[first_bad] + c1 * first_bad
    # Adjacent good node receives the request one hop later and answers
    # after d1 * (its distance to the requester) = d1 * 1.
    repair_time = request_time + 1.0 + d1 * 1.0
    recovery = {node: repair_time + (node - (first_bad - 1))
                for node in range(first_bad, chain_length)}
    return ChainRecoverySchedule(
        chain_length=chain_length, failure_hops=failure_hops,
        trigger_gap=trigger_gap, detection_time=detection,
        request_time=request_time, repair_time=repair_time,
        recovery_time=recovery)


def unicast_recovery_delay(node: int) -> float:
    """Recovery delay if ``node`` unicast its request to the source.

    The node sends at detection; the source's reply arrives one RTT
    later. (With a TCP-style retransmit timer the typical ratio is closer
    to two RTTs, as the paper notes.)
    """
    return 2.0 * node
