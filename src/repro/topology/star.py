"""Star topology (paper Fig. 2).

A hub (node 0) with ``num_leaves`` identical spokes. The paper stipulates
that the hub is *not* a member of the multicast session: all leaves detect
a loss simultaneously, so only *probabilistic* suppression (randomized
timers) limits the request implosion.
"""

from __future__ import annotations

from repro.topology.spec import TopologySpec

#: Node id of the hub in specs produced by :func:`star`.
HUB = 0


def star(num_leaves: int) -> TopologySpec:
    """A star with hub node 0 and leaves 1..num_leaves."""
    if num_leaves < 2:
        raise ValueError("a star needs at least 2 leaves")
    edges = [(HUB, leaf) for leaf in range(1, num_leaves + 1)]
    spec = TopologySpec(name=f"star-{num_leaves}", num_nodes=num_leaves + 1,
                        edges=edges)
    spec.metadata["hub"] = HUB
    spec.metadata["leaves"] = list(range(1, num_leaves + 1))
    return spec
