"""Threshold-based regression comparison between two metrics bundles.

``repro compare old.json new.json`` gates on the headline card: for each
lower-is-better key, the candidate regresses when it exceeds the
baseline by more than ``threshold`` (relative, default 10%). The CLI
maps a regressing comparison to a non-zero exit code, which is what the
benchmark CI job consumes.

Wall-clock never appears here — every gated metric is a deterministic
function of (scenario, config, seed), so a committed baseline bundle
compares exactly across machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.metrics.bundle import RunMetrics

#: Headline keys where a larger value is worse. Counts of loss events
#: themselves are identity checks, not regressions, so they are gated
#: too: a run that suddenly loses more packets than its baseline is
#: exactly the kind of drift the gate exists to catch.
GATED_KEYS = (
    "loss_events",
    "requests_mean",
    "repairs_mean",
    "duplicate_requests_mean",
    "duplicate_repairs_mean",
    "recovery_ratio_p50",
    "recovery_ratio_p90",
    "recovery_ratio_max",
    "request_ratio_p50",
    "request_ratio_p90",
    "request_ratio_max",
    "last_member_ratio_p50",
    "last_member_ratio_p90",
    "last_member_ratio_max",
    "control_bytes_per_member",
)

#: Default relative tolerance: a gated metric may grow by this fraction
#: of the baseline before the comparison fails.
DEFAULT_THRESHOLD = 0.10


@dataclass
class Delta:
    """One headline key's movement between baseline and candidate."""

    key: str
    baseline: Optional[float]
    candidate: Optional[float]
    regressed: bool

    @property
    def change(self) -> Optional[float]:
        """Relative change, None when it cannot be expressed."""
        if self.baseline is None or self.candidate is None:
            return None
        if self.baseline == 0:
            return None if self.candidate == 0 else float("inf")
        return (self.candidate - self.baseline) / self.baseline


@dataclass
class ComparisonReport:
    """Everything ``repro compare`` prints, plus the pass/fail verdict."""

    baseline_experiment: str
    candidate_experiment: str
    threshold: float
    deltas: List[Delta] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = [
            f"comparing {self.baseline_experiment or '<baseline>'} -> "
            f"{self.candidate_experiment or '<candidate>'} "
            f"(threshold {self.threshold:.0%})",
            f"{'metric':<28} {'baseline':>12} {'candidate':>12} "
            f"{'change':>9}",
        ]
        for delta in self.deltas:
            change = delta.change
            lines.append(
                f"{delta.key:<28} {_num(delta.baseline):>12} "
                f"{_num(delta.candidate):>12} {_pct(change):>9}"
                f"{'  REGRESSED' if delta.regressed else ''}")
        if self.ok:
            lines.append("OK: no gated metric regressed beyond threshold")
        else:
            keys = ", ".join(delta.key for delta in self.regressions)
            lines.append(f"REGRESSION: {keys}")
        return "\n".join(lines)


def compare_bundles(baseline: RunMetrics, candidate: RunMetrics,
                    threshold: float = DEFAULT_THRESHOLD,
                    keys: Optional[List[str]] = None) -> ComparisonReport:
    """Gate ``candidate`` against ``baseline`` on the headline card.

    A key regresses when the candidate exceeds the baseline by more than
    ``threshold`` relatively (absolute slack of ``threshold`` when the
    baseline is zero), or when a metric the baseline measured is missing
    from the candidate.
    """
    old_card = baseline.headline()
    new_card = candidate.headline()
    report = ComparisonReport(
        baseline_experiment=baseline.experiment,
        candidate_experiment=candidate.experiment,
        threshold=threshold)
    for key in (keys if keys is not None else GATED_KEYS):
        old = old_card.get(key)
        new = new_card.get(key)
        report.deltas.append(Delta(
            key=key, baseline=old, candidate=new,
            regressed=_regressed(old, new, threshold)))
    return report


def _regressed(old: Optional[float], new: Optional[float],
               threshold: float) -> bool:
    if old is None:
        # Baseline never measured this: nothing to regress against.
        return False
    if new is None:
        # The candidate lost a metric the baseline had — that is a
        # regression of the measurement itself.
        return True
    allowance = threshold * abs(old) if old else threshold
    return new > old + allowance


def _num(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.4f}"


def _pct(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == float("inf"):
        return "+inf"
    return f"{value:+.1%}"
