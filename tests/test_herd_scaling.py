"""The scaling sweep (``repro scaling``) end to end.

Tier-1 runs the sweep at toy sizes — table shape, metrics bundle,
session-scaled C2 law, recovery at every point. The slow-marked test is
the nightly's N=10^5 point: the acceptance bar for the herd engine is a
figure 4/5-style sweep at a hundred thousand members in single-digit
minutes, and this keeps that claim continuously true.
"""

from __future__ import annotations

import pytest

from repro.experiments.scaling import (DEFAULT_SIZES, star_c2, run_scaling,
                                       star_scaling_scenario,
                                       tree_scaling_scenario)


def test_star_c2_scales_with_session():
    assert star_c2(100) == 10.0
    assert star_c2(100_000) == 10_000.0
    # Tiny sessions keep the paper's default C2.
    assert star_c2(10) == 2.0


def test_scenario_builders():
    star = star_scaling_scenario(50)
    assert star.session_size == 50
    assert star.source == 1 and star.drop_edge == (1, 0)
    tree = tree_scaling_scenario(50, seed=1)
    assert tree.session_size == 50
    assert tree.source == 0 and tree.drop_edge == (0, 1)
    assert tree.spec.num_nodes == 100


def test_small_sweep_recovers_and_reports():
    result = run_scaling(sizes=(64, 600), rounds=2, seed=0)
    assert [((p.kind, p.size)) for p in result.points] == [
        ("star", 64), ("tree", 64), ("star", 600), ("tree", 600)]
    for point in result.points:
        assert point.recovered
        assert point.repairs_mean >= 1.0
        assert point.requests_mean >= 1.0
        assert point.recovery_max is not None
    # 64-member sessions run fully traced, 600-member ones aggregated.
    assert {p.size: p.mode for p in result.points} == \
        {64: "full", 600: "aggregate"}
    assert result.metrics is not None
    assert result.metrics.loss_events == 2 * len(result.points)
    table = result.format_table()
    assert "star" in table and "tree" in table and "aggregate" in table


def test_sweep_is_deterministic():
    first = run_scaling(sizes=(64,), rounds=2, seed=3)
    second = run_scaling(sizes=(64,), rounds=2, seed=3)
    assert first.format_table() == second.format_table()
    assert first.metrics.recovery_ratios == second.metrics.recovery_ratios


def test_star_requests_stay_flat_as_n_grows():
    # The point of the session-scaled C2 law: request counts must not
    # grow with N. Two orders of magnitude, same single-digit regime.
    result = run_scaling(sizes=(100, 10_000), rounds=3, seed=1,
                         kinds=("star",))
    small, large = result.points
    assert large.requests_mean < 5 * small.requests_mean
    assert large.requests_mean < 40.0


@pytest.mark.slow
def test_full_sweep_to_100k_members():
    # The nightly mega-session point: both 10^5 topologies, recovered,
    # request counts still flat. (Wall clock is bounded by the CI job
    # timeout; locally this runs in well under a minute.)
    result = run_scaling(sizes=DEFAULT_SIZES, rounds=3, seed=0)
    mega = [p for p in result.points if p.size == 100_000]
    assert len(mega) == 2
    for point in mega:
        assert point.recovered
        assert point.mode == "aggregate"
        assert point.requests_mean < 40.0
