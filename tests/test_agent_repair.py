"""Unit tests for the repair side of the SRM agent (Section III-B)."""

import pytest

from repro.core.config import SrmConfig
from repro.core.names import AduName, DEFAULT_PAGE
from repro.net.link import MatchDropFilter, NthPacketDropFilter
from repro.topology.chain import chain
from repro.topology.star import star

from conftest import build_srm_session


NAME1 = AduName(0, DEFAULT_PAGE, 1)


def drop_first_data(network, a, b):
    network.add_drop_filter(a, b, NthPacketDropFilter(
        lambda p: p.kind == "srm-data"))


def send_pair(network, agent, gap=1.0):
    network.scheduler.schedule(0.0, lambda: agent.send_data("dropped"))
    network.scheduler.schedule(gap, lambda: agent.send_data("trigger"))


def test_exactly_one_repair_on_chain():
    config = SrmConfig(c1=1.0, c2=0.0, d1=1.0, d2=0.0)
    network, agents, _ = build_srm_session(chain(8), range(8), config=config)
    drop_first_data(network, 3, 4)
    send_pair(network, agents[0])
    network.run()
    repairs = network.trace.filter(kind="send_repair")
    assert len(repairs) == 1
    assert repairs[0].node == 3  # the good node adjacent to the failure


def test_any_member_with_data_can_answer():
    """Reliability does not depend on the original source staying around
    (Section III): after the data is disseminated, the source leaves and
    another member answers a late joiner's recovery."""
    network, agents, group = build_srm_session(chain(5), range(4))
    send_pair(network, agents[0])
    network.run()
    agents[0].leave_group()
    # Node 4 joins late and hears a fresh packet, revealing the history.
    from repro.core.agent import SrmAgent
    from repro.sim.rng import RandomSource
    late = SrmAgent(SrmConfig(), RandomSource(99))
    network.attach(4, late)
    late.join_group(group)
    network.scheduler.schedule(1.0, lambda: agents[1].send_data("new"))
    network.run()
    # Late node recovered source 0's data without source 0's help.
    assert late.store.have(AduName(1, DEFAULT_PAGE, 1))


def test_repair_timer_cancelled_by_other_repair():
    # A wide D2 interval spreads the 29 potential repliers out enough
    # for the first repair to suppress almost everyone (the star needs
    # probabilistic suppression -- Section IV-B, applied to repairs).
    config = SrmConfig(d1=1.0, d2=30.0)
    network, agents, _ = build_srm_session(star(30), range(1, 31),
                                           config=config)
    # Drop on the hub->leaf-2 link: only leaf 2 loses the packet, so the
    # other 29 members all hold the data and race to answer its request.
    drop_first_data(network, 0, 2)
    send_pair(network, agents[1])
    network.run()
    cancelled = sum(agents[n].repairs_cancelled for n in range(1, 31))
    sent = sum(agents[n].repairs_sent for n in range(1, 31))
    assert sent >= 1
    scheduled = len(network.trace.filter(kind="repair_scheduled"))
    assert scheduled > sent
    assert cancelled >= scheduled - sent - 1
    assert cancelled > sent


def test_star_repair_implosion_with_narrow_interval():
    """The contrast case: with the default log10(G) repair interval, a
    star produces many duplicate repairs -- the motivation for adapting
    D2 upward (Section VII-A)."""
    network, agents, _ = build_srm_session(star(30), range(1, 31))
    drop_first_data(network, 0, 2)
    send_pair(network, agents[1])
    network.run()
    sent = sum(agents[n].repairs_sent for n in range(1, 31))
    assert sent > 5


def test_repair_timer_interval_uses_distance_to_requester():
    config = SrmConfig(d1=3.0, d2=1.0)
    network, agents, _ = build_srm_session(chain(6), range(6), config=config)
    drop_first_data(network, 4, 5)
    send_pair(network, agents[0])
    network.run()
    context = agents[2]._repairs.get(NAME1)
    assert context is not None
    assert context.requester == 5
    distance = 3.0  # node 2 -> requester node 5
    # The drawn delay survives in the timer even after cancellation.
    delay = context.timer.expiry - context.set_at
    assert config.d1 * distance <= delay + 1e-9
    assert delay <= (config.d1 + config.d2) * distance + 1e-9


def test_holddown_ignores_duplicate_requests():
    """Section III-B: after sending/receiving a repair, requests for the
    same data are ignored for 3*d, preventing repair echo storms."""
    network, agents, _ = build_srm_session(star(20), range(1, 21),
                                           config=SrmConfig(c1=0.0, c2=0.5))
    # Tiny C2 so many duplicate requests fire nearly simultaneously.
    drop_first_data(network, 1, 0)
    send_pair(network, agents[1])
    network.run()
    ignored = network.trace.count("request_ignored_holddown")
    repairs = network.trace.count("send_repair")
    requests = network.trace.count("send_request")
    assert requests > 3
    assert ignored > 0
    # Far fewer repairs than requests: the holddown did its job.
    assert repairs < requests


def test_pending_repair_ignores_further_requests():
    network, agents, _ = build_srm_session(star(20), range(1, 21),
                                           config=SrmConfig(c1=0.0, c2=0.5))
    drop_first_data(network, 1, 0)
    send_pair(network, agents[1])
    network.run()
    assert network.trace.count("request_while_repair_pending") > 0


def test_repair_delivers_data_and_records_recovery():
    network, agents, _ = build_srm_session(chain(5), range(5))
    drop_first_data(network, 1, 2)
    send_pair(network, agents[0])
    network.run()
    recoveries = network.trace.filter(kind="data_recovered")
    assert {row.node for row in recoveries} == {2, 3, 4}
    for row in recoveries:
        assert row.detail["delay"] > 0
        assert row.detail["rtt"] > 0


def test_repair_sets_holddown_at_receivers():
    network, agents, _ = build_srm_session(chain(5), range(5))
    drop_first_data(network, 1, 2)
    send_pair(network, agents[0])
    network.run()
    # Every member that sent or received the repair recorded a hold-down
    # window for that name (it may have expired by the end of the run).
    for node in (2, 3, 4):
        assert NAME1 in agents[node]._holddown


def test_source_answers_requests_for_its_own_data():
    network, agents, _ = build_srm_session(chain(3), range(3))
    drop_first_data(network, 1, 2)
    send_pair(network, agents[0])
    network.run()
    repairs = network.trace.filter(kind="send_repair")
    # On a 3-chain the answer comes from node 1 or the source itself;
    # either way the data arrives.
    assert len(repairs) >= 1
    assert agents[2].store.have(NAME1)


def test_lost_repair_triggers_rerequest():
    """Requests are retransmitted with backoff until the repair lands
    (Section VII-A: members rely on retransmit timers when requests or
    repairs are themselves dropped)."""
    network, agents, _ = build_srm_session(chain(3), range(3))
    drop_first_data(network, 1, 2)
    repair_killer = NthPacketDropFilter(lambda p: p.kind == "srm-repair")
    network.add_drop_filter(1, 2, repair_killer)
    send_pair(network, agents[0])
    network.run(until=2000.0)
    assert agents[2].store.have(NAME1)
    assert agents[2].requests_sent >= 2
    assert network.trace.count("send_repair") >= 2
