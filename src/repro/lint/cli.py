"""The ``repro lint`` command.

Exit codes:

* ``0`` — clean (after suppressions and baseline waiving)
* ``1`` — violations (or an external tool failed)
* ``2`` — usage / configuration error, including a ``--update-baseline``
  that would *grow* the baseline (the ratchet refuses)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.baseline import (BaselineError, load_baseline,
                                 save_baseline)
from repro.lint.engine import LintEngine
from repro.lint.external import run_mypy, run_ruff
from repro.lint.rules import all_rules

DEFAULT_BASELINE = "lint-baseline.json"
DEFAULT_PATHS = ("src", "tests")


def install_options(sub: argparse.ArgumentParser,
                    defaults: Optional[dict] = None) -> None:
    """Argparse options for the lint command (used by repro.cli)."""
    sub.add_argument("paths", nargs="*", default=None,
                     help="files or directories to lint "
                          "(default: src tests)")
    sub.add_argument("--baseline", default=DEFAULT_BASELINE,
                     metavar="PATH",
                     help="baseline file (default: %(default)s)")
    sub.add_argument("--no-baseline", action="store_true",
                     help="report baselined violations too")
    sub.add_argument("--update-baseline", action="store_true",
                     help="shrink the baseline to match reality; "
                          "refuses to grow it")
    sub.add_argument("--select", default=None, metavar="CODES",
                     help="comma-separated rule codes to run "
                          "(default: all)")
    sub.add_argument("--list-rules", action="store_true",
                     help="print every rule code and exit")
    sub.add_argument("--mypy", action="store_true",
                     help="also run mypy (skipped if not installed)")
    sub.add_argument("--ruff", action="store_true",
                     help="also run ruff check (skipped if not "
                          "installed)")
    sub.add_argument("--external", action="store_true",
                     help="shorthand for --mypy --ruff")


def run_lint_command(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:<28} {rule.summary}")
        return 0

    try:
        baseline = load_baseline(args.baseline) \
            if not args.no_baseline else None
    except BaselineError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [code.strip().upper() for code in args.select.split(",")
                  if code.strip()]
    try:
        engine = LintEngine(baseline=baseline, select=select)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    paths = args.paths or list(DEFAULT_PATHS)
    report = engine.run(paths)

    if args.update_baseline:
        if baseline is None:
            print("lint: --update-baseline conflicts with --no-baseline",
                  file=sys.stderr)
            return 2
        shrunk = baseline.shrunk(report.observed)
        grown = baseline.would_grow(shrunk)
        if grown:  # defensive: shrunk() cannot grow, but keep the gate
            print("lint: refusing to grow the baseline:", file=sys.stderr)
            for line in grown:
                print(f"  {line}", file=sys.stderr)
            return 2
        if report.violations:
            print("lint: new violations present; fix or suppress them "
                  "before updating the baseline (the ratchet never "
                  "absorbs new debt):", file=sys.stderr)
            print(report.format(), file=sys.stderr)
            return 2
        removed = baseline.total() - shrunk.total()
        save_baseline(shrunk, args.baseline)
        print(f"baseline updated: {removed} waived violation(s) "
              f"removed, {shrunk.total()} remain")
        return 0

    print(report.format())

    exit_code = 0 if report.ok else 1
    if args.external or args.mypy:
        result = run_mypy()
        print(result.format())
        if not result.ok:
            exit_code = max(exit_code, 1)
    if args.external or args.ruff:
        result = run_ruff()
        print(result.format())
        if not result.ok:
            exit_code = max(exit_code, 1)
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="SRM-specific static analysis "
                    "(docs/static-analysis.md)")
    install_options(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
