"""Shortest-path routing structures.

Both unicast forwarding and multicast distribution in the reproduction are
driven by per-origin shortest-path trees (the paper: "messages are multicast
to members of the multicast group along a shortest-path tree from the
source"). :class:`SourceTree` captures one such tree together with the
derived quantities the experiments need: delay distance, hop count, the
minimum initial TTL required to reach each node, and subtree membership
below each tree edge (for simulating a drop on a "congested link").
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.net.packet import NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link

Adjacency = Dict[NodeId, Dict[NodeId, "Link"]]


class SourceTree:
    """The shortest-path tree rooted at ``origin``.

    Ties are broken toward the lower node id of the previous hop, so the
    tree is a deterministic function of the topology.
    """

    def __init__(self, origin: NodeId, parent: Dict[NodeId, Optional[NodeId]],
                 dist: Dict[NodeId, float], hops: Dict[NodeId, int],
                 ttl_required: Dict[NodeId, int]) -> None:
        self.origin = origin
        self.parent = parent
        self.dist = dist
        self.hops = hops
        self.ttl_required = ttl_required
        self.children: Dict[NodeId, List[NodeId]] = {node: [] for node in parent}
        for node, par in parent.items():
            if par is not None:
                self.children[par].append(node)
        for kids in self.children.values():
            kids.sort()
        self._subtree_cache: Dict[NodeId, Set[NodeId]] = {}

    @property
    def nodes(self) -> Iterable[NodeId]:
        return self.parent.keys()

    def path(self, node: NodeId) -> List[NodeId]:
        """Nodes on the tree path origin -> node, inclusive."""
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    def path_edges(self, node: NodeId) -> List[Tuple[NodeId, NodeId]]:
        """Directed tree edges (parent, child) on the path origin -> node."""
        path = self.path(node)
        return list(zip(path[:-1], path[1:]))

    def subtree(self, node: NodeId) -> Set[NodeId]:
        """All nodes in the subtree rooted at ``node`` (inclusive).

        Equivalently: the nodes cut off when the tree edge into ``node``
        drops a packet. Results are cached per tree.
        """
        cached = self._subtree_cache.get(node)
        if cached is not None:
            return cached
        members: Set[NodeId] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            members.add(current)
            stack.extend(self.children[current])
        self._subtree_cache[node] = members
        return members

    def on_tree_edge(self, u: NodeId, v: NodeId) -> Optional[Tuple[NodeId, NodeId]]:
        """Orient an undirected edge along the tree, or None if off-tree.

        Returns (parent, child) when {u, v} is a tree edge.
        """
        if self.parent.get(v) == u:
            return (u, v)
        if self.parent.get(u) == v:
            return (v, u)
        return None

    def next_hop_toward(self, node: NodeId) -> NodeId:
        """First hop on the path from the origin to ``node``."""
        if node == self.origin:
            raise ValueError("no next hop from origin to itself")
        current = node
        while self.parent[current] != self.origin:
            current = self.parent[current]  # type: ignore[assignment]
        return current


def build_source_tree(adjacency: Adjacency, origin: NodeId) -> SourceTree:
    """Dijkstra from ``origin`` over the weighted adjacency.

    Also computes, per node, the minimum initial TTL a multicast packet
    needs to reach it along the tree: the TTL at an intermediate node u is
    ``initial_ttl - hops(origin, u)`` and the packet crosses link (u, v)
    only if that is at least the link's threshold.
    """
    if origin not in adjacency:
        raise KeyError(f"origin {origin} not in topology")
    dist: Dict[NodeId, float] = {origin: 0.0}
    hops: Dict[NodeId, int] = {origin: 0}
    parent: Dict[NodeId, Optional[NodeId]] = {origin: None}
    ttl_required: Dict[NodeId, int] = {origin: 0}
    # Heap entries: (distance, previous-hop id, node). The previous-hop id
    # in the key makes tie-breaking deterministic.
    heap: List[Tuple[float, NodeId, NodeId, Optional[NodeId]]] = [
        (0.0, origin, origin, None)]
    settled: Set[NodeId] = set()
    while heap:
        d, _, node, via = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if via is not None:
            parent[node] = via
            dist[node] = d
            hops[node] = hops[via] + 1
            link = adjacency[via][node]
            ttl_required[node] = max(ttl_required[via],
                                     hops[via] + link.threshold)
        for neighbor, link in sorted(adjacency[node].items()):
            if neighbor in settled:
                continue
            candidate = d + link.delay
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, node, neighbor, node))
    unreachable = set(adjacency) - settled
    if unreachable:
        raise ValueError(
            f"topology is disconnected; unreachable from {origin}: "
            f"{sorted(unreachable)[:5]}...")
    return SourceTree(origin, parent, dist, hops, ttl_required)


def pairwise_distance(adjacency: Adjacency, a: NodeId, b: NodeId) -> float:
    """Shortest-path delay between two nodes (one-off query)."""
    return build_source_tree(adjacency, a).dist[b]
