"""The network container: topology + delivery engines.

:class:`Network` owns the scheduler, the graph of nodes and links, the
multicast group membership, and the per-origin shortest-path trees. It
offers two delivery engines with identical semantics:

* ``hop`` — reference implementation: packets are forwarded link by link,
  consuming one event per hop. Used by unit tests and small examples.
* ``direct`` — fast implementation: a send is expanded into one arrival
  event per receiver at the correct shortest-path delay, with drop filters,
  TTL thresholds and scope zones applied analytically against the source
  tree. Used by the paper-scale experiments.

A dedicated equivalence test (tests/test_delivery_equivalence.py) checks
that the two engines deliver the same packets at the same times.

One documented difference: the direct engine consults drop filters at
*send* time, the hop engine at *link-crossing* time. For stateless
filters, and for stateful (counting) filters whose predicate matches
packets from a single origin — the paper's "drop the first data packet
from source S" model — the engines are exactly equivalent, because
packets from one origin cross any given link in send order. A counting
filter matching several origins may pick a different victim when two
packets race toward the same link.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, \
    Sequence, Set, Tuple, Union

from repro.mcast.groups import GroupManager
from repro.net.link import DropFilter, Link
from repro.net.node import Agent, Node
from repro.net.packet import DEFAULT_TTL, GroupAddress, NodeId, Packet
from repro.net.routing import SourceTree, build_source_tree
from repro.sim import perf
from repro.sim.scheduler import SimScheduler, create_scheduler
from repro.sim.trace import Trace

#: One delivery-plan entry: (one-way delay, hop count, target), where
#: target is a single member id or a tuple of member ids that share the
#: same delay and hop count and are therefore delivered by one event.
PlanTarget = Union[NodeId, Tuple[NodeId, ...]]
PlanEntry = Tuple[float, int, PlanTarget]


class Network:
    """A simulated internetwork."""

    def __init__(self, scheduler: Optional[SimScheduler] = None,
                 trace: Optional[Trace] = None,
                 delivery: str = "direct") -> None:
        if delivery not in ("direct", "hop"):
            raise ValueError(f"unknown delivery mode {delivery!r}")
        # Backend chosen by SRM_SCHED_BACKEND (the CLI's --sched-backend
        # exports it); both produce identical (time, seq) event order.
        self.scheduler = (scheduler if scheduler is not None
                          else create_scheduler())
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.delivery = delivery
        self.nodes: Dict[NodeId, Node] = {}
        self.links: List[Link] = []
        self.adjacency: Dict[NodeId, Dict[NodeId, Link]] = {}
        self.groups = GroupManager()
        self.scope_zones: Dict[str, Set[NodeId]] = {}
        self.account_bandwidth = False
        self.packets_dropped = 0
        self._trees: Dict[NodeId, SourceTree] = {}
        self._filtered_links: Set[Link] = set()
        self._queueing_links: Set[Link] = set()
        #: (origin, gid) -> (membership version, nodes with members at or
        #: below them) — the DVMRP-style pruned forwarding state.
        self._prune_cache: Dict[Tuple[NodeId, int], Tuple[int, Set[NodeId]]] = {}
        #: Direct-engine delivery plans: (origin, gid, initial_ttl,
        #: scope_zone) -> (tree identity, membership version, zone version,
        #: delivery entries, receiver count). The tree identity entry
        #: invalidates on any topology change (trees are rebuilt), the
        #: versions on membership / zone changes. Drop-filter changes do
        #: NOT invalidate: plans exclude filters by design (cuts are
        #: applied per send on top of the cached plan).
        self._plan_cache: Dict[
            Tuple[NodeId, int, int, Optional[str]],
            Tuple[SourceTree, int, int, Tuple[PlanEntry, ...], int]] = {}
        self._zone_version = 0
        #: node -> bound ``receive`` of that node's sole agent; built
        #: lazily by :meth:`_deliver_many` and cleared whenever
        #: :meth:`attach`/:meth:`detach` changes any node's agent list
        #: (the only mutation paths — ``Node.attach`` is not called
        #: directly anywhere else).
        self._receive_cache: Dict[NodeId, Callable[[Packet], None]] = {}
        #: When True (and tracing is enabled), every packet handed to a
        #: node emits a "deliver" trace record. Off by default: delivery
        #: is the hottest path and check mode (repro.oracle) opts in.
        self.trace_deliveries = False
        self.perf = perf.GLOBAL

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_node(self, node_id: Optional[NodeId] = None) -> Node:
        """Create a node; ids default to consecutive integers."""
        if node_id is None:
            node_id = len(self.nodes)
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already exists")
        node = Node(node_id)
        self.nodes[node_id] = node
        self.adjacency[node_id] = {}
        self._trees.clear()
        return node

    def add_link(self, a: NodeId, b: NodeId, delay: float = 1.0,
                 threshold: int = 1) -> Link:
        for end in (a, b):
            if end not in self.nodes:
                raise KeyError(f"node {end} does not exist")
        if b in self.adjacency[a]:
            raise ValueError(f"link {a}<->{b} already exists")
        link = Link(a, b, delay=delay, threshold=threshold)
        self.links.append(link)
        self.adjacency[a][b] = link
        self.adjacency[b][a] = link
        self._trees.clear()
        return link

    def link_between(self, a: NodeId, b: NodeId) -> Link:
        try:
            return self.adjacency[a][b]
        except KeyError:
            raise KeyError(f"no link between {a} and {b}") from None

    def add_drop_filter(self, a: NodeId, b: NodeId,
                        drop_filter: DropFilter) -> None:
        """Arm a drop filter on the link between a and b."""
        link = self.link_between(a, b)
        link.add_filter(drop_filter)
        self._filtered_links.add(link)

    def clear_drop_filters(self) -> None:
        for link in self._filtered_links:
            link.clear_filters()
        self._filtered_links.clear()

    def define_scope_zone(self, name: str, nodes: Iterable[NodeId]) -> None:
        """Declare an administrative scope zone (Section VII-B1)."""
        self.scope_zones[name] = set(nodes)
        self._zone_version += 1

    def set_link_bandwidth(self, a: NodeId, b: NodeId, bandwidth: float,
                           queue_limit: Optional[int] = None) -> Link:
        """Give a link finite bandwidth and a FIFO buffer.

        Queueing links are only supported by the hop-by-hop delivery
        engine (the direct engine precomputes arrival times and cannot
        model queueing).
        """
        if self.delivery != "hop":
            raise ValueError(
                "queueing links require delivery='hop'; rebuild the "
                "network with spec.build(delivery='hop')")
        link = self.link_between(a, b)
        link.set_bandwidth(bandwidth, queue_limit)
        self._queueing_links.add(link)
        return link

    # ------------------------------------------------------------------
    # Agents and groups
    # ------------------------------------------------------------------

    def attach(self, node_id: NodeId, agent: Agent) -> Agent:
        self.nodes[node_id].attach(agent)
        agent.attached(self, node_id)
        self._receive_cache.clear()
        return agent

    def detach(self, node_id: NodeId, agent: Agent) -> None:
        self.nodes[node_id].detach(agent)
        self._receive_cache.clear()

    def join(self, node_id: NodeId, group: GroupAddress) -> None:
        self.groups.join(node_id, group)

    def leave(self, node_id: NodeId, group: GroupAddress) -> None:
        self.groups.leave(node_id, group)

    def group_size(self, group: GroupAddress) -> int:
        """Member count (floored at 1, the way SRM timer math needs it).

        Part of the engine surface (:class:`repro.live.engine.Engine`):
        the sim answers from exact membership; a live engine answers from
        local membership plus the remote peers it has heard from.
        """
        return max(1, self.groups.size(group))

    # ------------------------------------------------------------------
    # Routing queries (also the oracle used by experiments)
    # ------------------------------------------------------------------

    def source_tree(self, origin: NodeId) -> SourceTree:
        tree = self._trees.get(origin)
        if tree is None:
            tree = build_source_tree(self.adjacency, origin)
            self._trees[origin] = tree
        return tree

    def distance(self, a: NodeId, b: NodeId) -> float:
        """One-way shortest-path delay between two nodes."""
        if a == b:
            return 0.0
        return self.source_tree(a).dist[b]

    def hops(self, a: NodeId, b: NodeId) -> int:
        if a == b:
            return 0
        return self.source_tree(a).hops[b]

    def rtt(self, a: NodeId, b: NodeId) -> float:
        """Round-trip delay, assuming symmetric paths as the paper does."""
        return 2.0 * self.distance(a, b)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Inject a packet at its origin node."""
        packet.sent_at = self.scheduler.now
        self.perf.count_packet(packet.kind)
        if packet.is_multicast:
            if self.delivery == "direct":
                self._multicast_direct(packet)
            else:
                self._multicast_hop_start(packet)
        else:
            if self.delivery == "direct":
                self._unicast_direct(packet)
            else:
                self._unicast_hop(packet.origin, packet)

    def send_unicast(self, src: NodeId, dst: NodeId, kind: str,
                     payload: Any = None, size: int = 1000) -> Packet:
        packet = Packet(origin=src, dst=dst, kind=kind, payload=payload,
                        size=size)
        self.send(packet)
        return packet

    def send_multicast(self, src: NodeId, group: GroupAddress, kind: str,
                       payload: Any = None, ttl: int = DEFAULT_TTL,
                       size: int = 1000,
                       scope_zone: Optional[str] = None) -> Packet:
        packet = Packet(origin=src, dst=group, kind=kind, payload=payload,
                        ttl=ttl, size=size, scope_zone=scope_zone)
        self.send(packet)
        return packet

    # ------------------------------------------------------------------
    # Direct delivery engine
    # ------------------------------------------------------------------

    def _dropped_subtrees(self, tree: SourceTree,
                          packet: Packet) -> List[Set[NodeId]]:
        """Consult armed drop filters against the packet's source tree."""
        subtrees: List[Set[NodeId]] = []
        oriented_links: List[Tuple[int, NodeId, NodeId, Link]] = []
        for link in self._filtered_links:
            oriented = tree.on_tree_edge(link.a, link.b)
            if oriented is None:
                continue
            parent, child = oriented
            oriented_links.append((tree.hops[parent], parent, child, link))
        # Consult filters upstream-first so a drop high in the tree shields
        # filters (and their counters) below it, as hop-by-hop delivery would.
        for _, parent, child, link in sorted(oriented_links,
                                             key=lambda item: item[:3]):
            # Only consult the filter if the packet actually attempts to
            # cross this link: it must reach the upstream end with enough
            # TTL for the threshold (matching hop-by-hop semantics, where
            # a packet that dies upstream never touches the filter).
            if packet.initial_ttl < tree.ttl_required[child]:
                continue
            if any(parent in cut for cut in subtrees):
                continue
            if link.drops_packet(packet, parent):
                self.packets_dropped += 1
                if self.trace.enabled:
                    self.trace.record(self.scheduler.now, parent, "drop",
                                      packet=packet.uid,
                                      packet_kind=packet.kind,
                                      link=(parent, child))
                subtrees.append(tree.subtree(child))
        return subtrees

    def _zone_allows(self, tree: SourceTree, packet: Packet,
                     target: NodeId) -> bool:
        zone = self.scope_zones.get(packet.scope_zone or "", None)
        if packet.scope_zone is None:
            return True
        if zone is None:
            raise KeyError(f"unknown scope zone {packet.scope_zone!r}")
        return all(node in zone for node in tree.path(target))

    def _multicast_plan(self, tree: SourceTree,
                        packet: Packet) -> Tuple[Tuple[PlanEntry, ...], int]:
        """TTL/zone-eligible receivers for this (origin, group, ttl, zone).

        Returns ``(entries, receiver_count)``. Receivers sharing the same
        (delay, hop count) are merged into one entry delivered by a single
        event. Two same-send arrivals tie in time exactly when they tie in
        delay, so a stable sort by delay followed by merging preserves the
        per-receiver firing order the unmerged engine produced: receivers
        at distinct delays were already ordered by time, and receivers at
        equal delay keep their membership-iteration order inside the run.

        Drop filters are deliberately *not* folded in: their verdict can
        change per send (counting filters), so cuts are applied on top of
        the plan at send time.
        """
        initial_ttl = packet.initial_ttl
        origin = packet.origin
        scoped = packet.scope_zone is not None
        dist = tree.dist
        hops = tree.hops
        ttl_required = tree.ttl_required
        eligible: List[Tuple[float, int, NodeId]] = []
        order = 0
        for member in self.groups.members(packet.dst):  # type: ignore[arg-type]
            if member == origin:
                continue
            if initial_ttl < ttl_required[member]:
                continue
            if scoped and not self._zone_allows(tree, packet, member):
                continue
            eligible.append((dist[member], order, member))
            order += 1
        eligible.sort()  # by delay; order index keeps the sort stable
        entries: List[PlanEntry] = []
        # -1 sentinels (no member has negative delay/hops) keep the run
        # state monomorphic floats/ints.
        run_dist, run_hops = -1.0, -1
        run_members: List[NodeId] = []
        for member_dist, _, member in eligible:
            member_hops = hops[member]
            if run_members and member_dist == run_dist \
                    and member_hops == run_hops:
                run_members.append(member)
                continue
            if run_members:
                entries.append((run_dist, run_hops,
                                run_members[0] if len(run_members) == 1
                                else tuple(run_members)))
            run_dist, run_hops = member_dist, member_hops
            run_members = [member]
        if run_members:
            entries.append((run_dist, run_hops,
                            run_members[0] if len(run_members) == 1
                            else tuple(run_members)))
        return tuple(entries), len(eligible)

    def _multicast_direct(self, packet: Packet) -> None:
        origin = packet.origin
        tree = self._trees.get(origin)
        if tree is None:
            tree = self.source_tree(origin)
        key = (origin, packet.dst.gid,  # type: ignore[union-attr]
               packet.initial_ttl, packet.scope_zone)
        cached = self._plan_cache.get(key)
        if (cached is not None and cached[0] is tree
                and cached[1] == self.groups.version
                and cached[2] == self._zone_version):
            plan, receivers = cached[3], cached[4]
            self.perf.plan_cache_hits += 1
        else:
            plan, receivers = self._multicast_plan(tree, packet)
            self._plan_cache[key] = (tree, self.groups.version,
                                     self._zone_version, plan, receivers)
            self.perf.plan_cache_misses += 1
        # Filters must be consulted on every send (their counters advance
        # with traffic), but the common case — no filter armed anywhere —
        # skips the scan entirely.
        cuts = (self._dropped_subtrees(tree, packet)
                if self._filtered_links else ())
        scheduler = self.scheduler
        schedule = scheduler.schedule
        deliver = self._deliver
        deliver_many = self._deliver_many
        copies: Dict[int, Packet] = {}
        scheduled = 0
        if cuts:
            for dist, hops, target in plan:
                if type(target) is tuple:
                    kept = [member for member in target
                            if not any(member in cut for cut in cuts)]
                    if not kept:
                        continue
                    count = len(kept)
                    target = kept[0] if count == 1 else tuple(kept)
                else:
                    if any(target in cut for cut in cuts):
                        continue
                    count = 1
                arrival = copies.get(hops)
                if arrival is None:
                    copies[hops] = arrival = _arrived_copy(packet, hops)
                if count == 1:
                    schedule(dist, deliver, target, arrival)
                else:
                    schedule(dist, deliver_many, target, arrival)
                scheduled += count
        else:
            # Hot branch: one scheduler call arms the whole plan (one
            # event per entry, exactly as the per-entry loop would).
            arrivals: List[Packet] = []
            append_arrival = arrivals.append
            get_copy = copies.get
            for _, hops, _ in plan:
                arrival = get_copy(hops)
                if arrival is None:
                    copies[hops] = arrival = _arrived_copy(packet, hops)
                append_arrival(arrival)
            scheduler.run_plan(scheduler.now, plan, deliver, deliver_many,
                               arrivals)
            scheduled = receivers
        counters = self.perf
        counters.arrival_copies += len(copies)
        counters.arrival_copies_shared += scheduled - len(copies)
        if self.account_bandwidth:
            members = self.groups.members(packet.dst)  # type: ignore[arg-type]
            self._account_multicast(tree, packet, members, cuts)

    def _account_multicast(self, tree: SourceTree, packet: Packet,
                           members: Sequence[NodeId],
                           cuts: Sequence[Set[NodeId]]) -> None:
        """Charge each traversed link once, on the pruned member tree.

        The multicast flows along the source tree pruned to the members
        (DVMRP-style): a tree edge carries the packet iff some member lies
        at or below its child end, the TTL admits the child, the child is
        not cut off by a drop, and the scope zone admits the child.
        """
        needed: Set[NodeId] = set()
        for member in members:
            if member == packet.origin:
                continue
            for node in tree.path(member):
                needed.add(node)
        for node in needed:
            parent = tree.parent[node]
            if parent is None:
                continue
            if packet.initial_ttl < tree.ttl_required[node]:
                continue
            if any(node in cut for cut in cuts):
                continue
            if packet.scope_zone is not None and not self._zone_allows(
                    tree, packet, node):
                continue
            self.adjacency[parent][node].account(packet)

    def _unicast_direct(self, packet: Packet) -> None:
        dst: NodeId = packet.dst  # type: ignore[assignment]
        if dst == packet.origin:
            self.scheduler.schedule(0.0, self._deliver, dst, packet)
            return
        tree = self.source_tree(packet.origin)
        if dst not in tree.dist:
            raise KeyError(f"no route from {packet.origin} to {dst}")
        for parent, child in tree.path_edges(dst):
            link = self.adjacency[parent][child]
            if link.filters and link.drops_packet(packet, parent):
                self.packets_dropped += 1
                if self.trace.enabled:
                    self.trace.record(self.scheduler.now, parent, "drop",
                                      packet=packet.uid,
                                      packet_kind=packet.kind,
                                      link=(parent, child))
                return
            if self.account_bandwidth:
                link.account(packet)
        arrival = _arrived_copy(packet, tree.hops[dst])
        self.scheduler.schedule(tree.dist[dst], self._deliver, dst, arrival)

    # ------------------------------------------------------------------
    # Hop-by-hop delivery engine
    # ------------------------------------------------------------------

    def _multicast_hop_start(self, packet: Packet) -> None:
        tree = self.source_tree(packet.origin)
        self._multicast_forward(packet.origin, packet, tree)

    def _on_tree_toward_members(self, tree: SourceTree,
                                group: GroupAddress) -> Set[NodeId]:
        """Nodes with group members at or below them on this tree.

        Forwarding only into this set models DVMRP-style pruning: leaving
        a group takes its traffic off the subtree, which matters when
        links have finite bandwidth (receiver-driven layering relies on
        it). Cached per (origin, group) and invalidated on any
        membership change.
        """
        key = (tree.origin, group.gid)
        version = self.groups.version
        cached = self._prune_cache.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        needed: Set[NodeId] = set()
        for member in self.groups.members(group):
            node: Optional[NodeId] = member
            while node is not None and node not in needed:
                needed.add(node)
                node = tree.parent[node]
        self._prune_cache[key] = (version, needed)
        return needed

    def _multicast_forward(self, at: NodeId, packet: Packet,
                           tree: SourceTree) -> None:
        needed = self._on_tree_toward_members(
            tree, packet.dst)  # type: ignore[arg-type]
        for child in tree.children[at]:
            if child not in needed:
                continue
            link = self.adjacency[at][child]
            if packet.ttl < link.threshold:
                continue
            if (packet.scope_zone is not None
                    and (at not in self.scope_zones[packet.scope_zone]
                         or child not in self.scope_zones[packet.scope_zone])):
                continue
            if link.filters and link.drops_packet(packet, at):
                self.packets_dropped += 1
                if self.trace.enabled:
                    self.trace.record(self.scheduler.now, at, "drop",
                                      packet=packet.uid,
                                      packet_kind=packet.kind,
                                      link=(at, child))
                continue
            arrival = link.arrival_time(self.scheduler, packet, at)
            if arrival is None:
                self.packets_dropped += 1
                if self.trace.enabled:
                    self.trace.record(self.scheduler.now, at, "queue_drop",
                                      packet=packet.uid,
                                      packet_kind=packet.kind,
                                      link=(at, child))
                continue
            if self.account_bandwidth:
                link.account(packet)
            self.scheduler.schedule_at(arrival, self._multicast_arrive,
                                       child, packet.forwarded_copy(), tree)

    def _multicast_arrive(self, at: NodeId, packet: Packet,
                          tree: SourceTree) -> None:
        if self.groups.is_member(at, packet.dst):  # type: ignore[arg-type]
            self._deliver(at, packet)
        self._multicast_forward(at, packet, tree)

    def _unicast_hop(self, at: NodeId, packet: Packet) -> None:
        dst: NodeId = packet.dst  # type: ignore[assignment]
        if at == dst:
            self._deliver(at, packet)
            return
        tree = self.source_tree(at)
        next_hop = tree.next_hop_toward(dst)
        link = self.adjacency[at][next_hop]
        if link.filters and link.drops_packet(packet, at):
            self.packets_dropped += 1
            if self.trace.enabled:
                self.trace.record(self.scheduler.now, at, "drop",
                                  packet=packet.uid, packet_kind=packet.kind,
                                  link=(at, next_hop))
            return
        arrival = link.arrival_time(self.scheduler, packet, at)
        if arrival is None:
            self.packets_dropped += 1
            if self.trace.enabled:
                self.trace.record(self.scheduler.now, at, "queue_drop",
                                  packet=packet.uid, packet_kind=packet.kind,
                                  link=(at, next_hop))
            return
        if self.account_bandwidth:
            link.account(packet)
        self.scheduler.schedule_at(arrival, self._unicast_hop, next_hop,
                                   packet.forwarded_copy())

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def _deliver(self, node_id: NodeId, packet: Packet) -> None:
        if self.trace_deliveries and self.trace.enabled:
            self.trace.record(self.scheduler.now, node_id, "deliver",
                              packet=packet.uid, packet_kind=packet.kind,
                              origin=packet.origin, ttl=packet.ttl,
                              initial_ttl=packet.initial_ttl,
                              zone=packet.scope_zone,
                              mcast=packet.dst.__class__ is GroupAddress)
        self.nodes[node_id].deliver(packet)

    def _deliver_many(self, members: Tuple[NodeId, ...],
                      packet: Packet) -> None:
        """Deliver one arrival to a same-(delay, hops) run of receivers.

        One scheduler event replaces ``len(members)`` individual ones;
        ``batched_deliveries`` counts the events saved. When delivery
        tracing is off and ``_deliver`` is not overridden or wrapped, the
        per-member hop through :meth:`_deliver` is skipped too. Otherwise
        delivery routes through ``_deliver``, resolved at fire time (not
        schedule time), so mid-run attachment changes — and tests that
        wrap ``_deliver`` to observe deliveries — behave exactly as they
        did when every receiver had its own event.
        """
        self.perf.batched_deliveries += len(members) - 1
        if (not self.trace_deliveries
                and type(self)._deliver is Network._deliver
                and "_deliver" not in self.__dict__):
            # Node.deliver's single-agent fast path, inlined and memoized:
            # this loop body runs once per receiver per packet, so the
            # node lookup / agent-count check / method bind is cached per
            # member (invalidated by attach/detach).
            cache = self._receive_cache
            nodes = self.nodes
            for member in members:
                receive = cache.get(member)
                if receive is None:
                    agents = nodes[member].agents
                    if len(agents) != 1:
                        nodes[member].deliver(packet)
                        continue
                    receive = agents[0].receive
                    cache[member] = receive
                receive(packet)
            return
        deliver = self._deliver
        for member in members:
            deliver(member, packet)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Convenience passthrough to the scheduler."""
        return self.scheduler.run(until=until, max_events=max_events)

    def __repr__(self) -> str:
        return (f"<Network {len(self.nodes)} nodes, {len(self.links)} links, "
                f"delivery={self.delivery}>")


def _arrived_copy(packet: Packet, hops: int) -> Packet:
    """The packet as seen by a receiver ``hops`` away from the origin.

    Clones by direct slot assignment rather than the dataclass
    constructor: this allocation runs once per (send, hop-distance), and
    skipping argument marshalling and ``__post_init__`` (delivery plans
    only admit receivers with ``ttl >= hops``, so the TTL checks cannot
    fire) is a measurable share of the delivery hot path.
    """
    if hops == 0:
        return packet
    copy = object.__new__(Packet)
    copy.origin = packet.origin
    copy.dst = packet.dst
    copy.kind = packet.kind
    copy.payload = packet.payload
    copy.ttl = packet.ttl - hops
    copy.initial_ttl = packet.initial_ttl
    copy.size = packet.size
    copy.scope_zone = packet.scope_zone
    copy.uid = packet.uid
    copy.sent_at = packet.sent_at
    return copy
