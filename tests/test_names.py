"""Unit tests for ADU names and pages."""

import pytest

from repro.core.names import DEFAULT_PAGE, AduName, PageId, name_range


def test_page_identity_and_ordering():
    a = PageId(1, 1)
    b = PageId(1, 2)
    c = PageId(2, 1)
    assert a == PageId(1, 1)
    assert a < b < c
    assert str(a) == "page(1:1)"


def test_names_are_value_objects():
    a = AduName(3, DEFAULT_PAGE, 5)
    b = AduName(3, DEFAULT_PAGE, 5)
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_name_ordering_by_source_page_seq():
    names = [AduName(2, DEFAULT_PAGE, 1), AduName(1, DEFAULT_PAGE, 9),
             AduName(1, DEFAULT_PAGE, 2)]
    assert sorted(names) == [AduName(1, DEFAULT_PAGE, 2),
                             AduName(1, DEFAULT_PAGE, 9),
                             AduName(2, DEFAULT_PAGE, 1)]


def test_sequence_numbers_start_at_one():
    with pytest.raises(ValueError):
        AduName(1, DEFAULT_PAGE, 0)
    with pytest.raises(ValueError):
        AduName(1, DEFAULT_PAGE, -3)


def test_name_str():
    name = AduName(3, PageId(3, 7), 12)
    assert str(name) == "3:3.7:12"


def test_name_range():
    names = name_range(1, DEFAULT_PAGE, 2, 4)
    assert [n.seq for n in names] == [2, 3, 4]
    assert name_range(1, DEFAULT_PAGE, 5, 4) == []


def test_names_immutable():
    name = AduName(1, DEFAULT_PAGE, 1)
    with pytest.raises(Exception):
        name.seq = 2  # type: ignore[misc]
