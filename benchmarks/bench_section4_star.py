"""Section IV-B: star-topology request counts vs. the closed form.

E[#requests] ~= 1 + (G-2)/C2 and E[first-request delay] =
(C1 + C2/G)/2 RTT; the simulation must track both.
"""

import pytest

from repro.analysis.star import (
    expected_first_request_delay_ratio,
    expected_requests,
)
from repro.core.config import SrmConfig
from repro.experiments.common import run_rounds
from repro.experiments.figure5 import star_scenario

from conftest import scale


def run_star_section4(group_size: int, c2: float, rounds: int):
    scenario = star_scenario(group_size)
    outcomes = run_rounds(scenario, config=SrmConfig(c1=2.0, c2=c2),
                          rounds=rounds, seed=int(c2) + 7)
    mean_requests = sum(o.requests for o in outcomes) / len(outcomes)
    mean_delay = sum(o.closest_request_ratio for o in outcomes) \
        / len(outcomes)
    return mean_requests, mean_delay


def test_section4_star(once):
    group_size = scale(50, 100)
    rounds = scale(15, 30)

    def sweep():
        rows = []
        for c2 in (5.0, 20.0, float(group_size)):
            requests, delay = run_star_section4(group_size, c2, rounds)
            rows.append((c2, requests, delay,
                         expected_requests(group_size, c2),
                         expected_first_request_delay_ratio(
                             group_size, 2.0, c2)))
        return rows

    rows = once(sweep)
    print()
    print(f"Section IV-B star, G={group_size}:")
    print(f"{'C2':>6} {'reqs(sim)':>10} {'reqs(model)':>12} "
          f"{'delay(sim)':>11} {'delay(model)':>13}")
    for c2, requests, delay, model_requests, model_delay in rows:
        print(f"{c2:>6.0f} {requests:>10.2f} {model_requests:>12.2f} "
              f"{delay:>11.3f} {model_delay:>13.3f}")

    for c2, requests, delay, model_requests, model_delay in rows:
        assert requests == pytest.approx(model_requests, rel=0.6, abs=2.0)
        assert delay == pytest.approx(model_delay, rel=0.3)
    # Raising C2 cuts duplicates and raises delay (the tradeoff).
    assert rows[0][1] > rows[-1][1]
    assert rows[0][2] < rows[-1][2]
