"""Unit tests for cancellable timers."""

from repro.sim.scheduler import EventScheduler
from repro.sim.timers import Timer, TimerState


def make():
    sched = EventScheduler()
    fired = []
    timer = Timer(sched, lambda: fired.append(sched.now), name="t")
    return sched, timer, fired


def test_timer_fires_at_expiry():
    sched, timer, fired = make()
    timer.start(4.0)
    assert timer.pending
    assert timer.expiry == 4.0
    sched.run()
    assert fired == [4.0]
    assert timer.state is TimerState.FIRED


def test_cancel_prevents_firing():
    sched, timer, fired = make()
    timer.start(4.0)
    timer.cancel()
    sched.run()
    assert fired == []
    assert timer.state is TimerState.CANCELLED


def test_cancel_unstarted_timer_is_noop():
    _, timer, _ = make()
    timer.cancel()
    assert timer.state is TimerState.IDLE


def test_restart_replaces_previous_schedule():
    sched, timer, fired = make()
    timer.start(4.0)
    timer.start(10.0)
    sched.run()
    assert fired == [10.0]


def test_reschedule_preserves_set_at():
    sched, timer, fired = make()
    timer.start(4.0)
    first_set = timer.set_at
    sched.run(until=2.0)
    timer.reschedule(8.0)
    assert timer.set_at == first_set
    assert timer.expiry == 10.0
    sched.run()
    assert fired == [10.0]


def test_reschedule_idle_timer_behaves_like_start():
    sched, timer, fired = make()
    timer.reschedule(3.0)
    sched.run()
    assert fired == [3.0]


def test_time_remaining():
    sched, timer, _ = make()
    timer.start(10.0)
    sched.run(until=4.0)
    assert timer.time_remaining() == 6.0
    timer.cancel()
    assert timer.time_remaining() == 0.0


def test_timer_can_be_restarted_after_firing():
    sched, timer, fired = make()
    timer.start(1.0)
    sched.run()
    timer.start(1.0)
    sched.run()
    assert fired == [1.0, 2.0]


def test_pending_property_tracks_state():
    sched, timer, _ = make()
    assert not timer.pending
    timer.start(1.0)
    assert timer.pending
    sched.run()
    assert not timer.pending
