"""Tests for the protocol-invariant oracles (repro.oracle).

Two angles: clean runs must verify with zero violations, and each
checker must catch a synthetic break of the invariant it guards. The
synthetic breaks are emitted straight into the trace stream, so each
test exercises exactly one rule.
"""

from __future__ import annotations

import pytest

from repro.core.names import AduName, DEFAULT_PAGE
from repro.net.link import NthPacketDropFilter
from repro.oracle import (
    OracleViolationError,
    RepairHolddownOracle,
    RequestTimerOracle,
    SchedulerMonotonicityOracle,
    SessionOracleSuite,
    SuppressionOracle,
    Violation,
    ViolationReport,
    check_mode_enabled,
)
from repro.oracle.checkers import DeliveryConsistencyOracle
from repro.sim.rng import RandomSource
from repro.topology import chain
from repro.topology.random_tree import random_labeled_tree

from conftest import at, build_srm_session

NAME = AduName(0, DEFAULT_PAGE, 1)


def oracle_names(suite):
    return sorted({violation.oracle for violation in suite.violations})


def single_oracle_suite(network, oracle_class):
    """A suite running exactly one checker, subscribed to the trace."""
    suite = SessionOracleSuite(network, oracles=[oracle_class])
    network.trace.enabled = True
    network.trace.subscribe(suite._on_record)
    return suite


def two_node_network():
    spec = chain(2)
    network = spec.build()
    return network


# ----------------------------------------------------------------------
# Check-mode switch
# ----------------------------------------------------------------------

def test_check_mode_env_parsing(monkeypatch):
    monkeypatch.delenv("SRM_CHECK", raising=False)
    assert not check_mode_enabled()
    monkeypatch.setenv("SRM_CHECK", "0")
    assert not check_mode_enabled()
    monkeypatch.setenv("SRM_CHECK", "")
    assert not check_mode_enabled()
    monkeypatch.setenv("SRM_CHECK", "1")
    assert check_mode_enabled()


# ----------------------------------------------------------------------
# Clean runs verify clean
# ----------------------------------------------------------------------

def run_recovery_session(seed=3, adaptive=False):
    rng = RandomSource(seed)
    spec = random_labeled_tree(14, rng)
    members = sorted(rng.sample(range(14), 9))
    config = None
    if adaptive:
        from repro.core.config import SrmConfig
        config = SrmConfig(adaptive=True)
    network, agents, _ = build_srm_session(spec, members, seed=seed,
                                           config=config)
    suite = SessionOracleSuite.attach(network, agents=agents,
                                      assert_delivery_members=members)
    source = rng.choice(members)
    network.add_drop_filter(*rng.choice(spec.edges), NthPacketDropFilter(
        lambda p: p.kind == "srm-data" and p.origin == source))
    for i in range(3):
        network.scheduler.schedule(
            float(i), lambda i=i: agents[source].send_data(f"p{i}"))
    network.run(max_events=2_000_000)
    return suite


def test_clean_loss_recovery_run_verifies_clean():
    suite = run_recovery_session()
    report = suite.verify(context="clean run")
    assert not report
    assert "no violations" in report.format()


def test_clean_adaptive_run_verifies_clean():
    report = run_recovery_session(seed=5, adaptive=True).verify()
    assert not report


def test_verify_is_repeatable():
    """finish() recomputes; calling verify twice must not double-count."""
    suite = run_recovery_session(seed=9)
    assert not suite.verify()
    assert not suite.verify()


# ----------------------------------------------------------------------
# Scheduler sanity
# ----------------------------------------------------------------------

def test_scheduler_oracle_rejects_time_skew():
    network = two_node_network()
    suite = single_oracle_suite(network, SchedulerMonotonicityOracle)
    # The scheduler clock reads 0.0; a record stamped in the future is
    # a bookkeeping bug.
    network.trace.record(5.0, 0, "send_data", name=NAME)
    assert oracle_names(suite) == ["scheduler-sanity"]


def test_scheduler_oracle_rejects_backwards_time():
    network = two_node_network()
    suite = single_oracle_suite(network, SchedulerMonotonicityOracle)
    network.trace.record(0.0, 0, "a")
    network.scheduler.schedule(1.0, lambda: None)
    network.run()  # clock now at 1.0
    network.trace.record(1.0, 0, "b")
    network.trace.record(0.5, 0, "c")  # runs backwards
    assert any("backwards" in violation.message
               for violation in suite.violations)


# ----------------------------------------------------------------------
# Request timers
# ----------------------------------------------------------------------

def test_request_oracle_rejects_backoff_jump():
    network = two_node_network()
    suite = single_oracle_suite(network, RequestTimerOracle)
    name = AduName(1, DEFAULT_PAGE, 1)
    network.trace.record(0.0, 0, "loss_detected", name=name)
    network.trace.record(0.0, 0, "request_timer_set", name=name,
                         delay=4.0, backoff=0, ignore_until=None)
    # Backoff 2 next: the count must advance by exactly one.
    network.trace.record(0.0, 0, "request_timer_set", name=name,
                         delay=16.0, backoff=2, ignore_until=None)
    assert oracle_names(suite) == ["request-timer"]
    assert "jumped" in suite.violations[0].message


def test_request_oracle_rejects_timer_without_loss_detection():
    network = two_node_network()
    suite = single_oracle_suite(network, RequestTimerOracle)
    network.trace.record(0.0, 0, "request_timer_set",
                         name=AduName(1, DEFAULT_PAGE, 1),
                         delay=4.0, backoff=0, ignore_until=None)
    assert any("without a loss detection" in violation.message
               for violation in suite.violations)


def test_request_oracle_rejects_delay_outside_interval():
    network = two_node_network()
    suite = single_oracle_suite(network, RequestTimerOracle)
    # Attach a real agent so the oracle can see C1/C2 and the distance.
    from repro.core.agent import SrmAgent
    from repro.core.config import SrmConfig
    agent = SrmAgent(SrmConfig(), RandomSource(0))
    network.attach(0, agent)
    group = network.groups.allocate()
    agent.join_group(group)
    name = AduName(1, DEFAULT_PAGE, 1)  # source is node 1, distance 1
    network.trace.record(0.0, 0, "loss_detected", name=name)
    # C1=C2=2, d=1, backoff 0: delay must lie in [2, 4]. 9.0 is illegal.
    network.trace.record(0.0, 0, "request_timer_set", name=name,
                         delay=9.0, backoff=0, ignore_until=None)
    assert any("outside" in violation.message
               for violation in suite.violations)


def test_request_oracle_rejects_unjustified_dup_ignore():
    network = two_node_network()
    suite = single_oracle_suite(network, RequestTimerOracle)
    network.trace.record(0.0, 0, "request_dup_ignored",
                         name=AduName(1, DEFAULT_PAGE, 1))
    assert any("no ignore-backoff window" in violation.message
               for violation in suite.violations)


# ----------------------------------------------------------------------
# Repair hold-down
# ----------------------------------------------------------------------

def test_holddown_oracle_rejects_duplicate_repair_in_window():
    network = two_node_network()
    suite = single_oracle_suite(network, RepairHolddownOracle)
    name = AduName(1, DEFAULT_PAGE, 1)  # anchor = source node 1, d = 1
    network.trace.record(0.0, 0, "send_repair", name=name, answering=None)
    # Window runs to 3*d = 3.0; a second repair at 1.0 violates it.
    network.trace.record(1.0, 0, "send_repair", name=name, answering=None)
    assert oracle_names(suite) == ["repair-holddown"]
    assert "hold-down window" in suite.violations[0].message


def test_holddown_oracle_allows_repair_after_window():
    network = two_node_network()
    suite = single_oracle_suite(network, RepairHolddownOracle)
    name = AduName(1, DEFAULT_PAGE, 1)
    network.trace.record(0.0, 0, "send_repair", name=name, answering=None)
    network.trace.record(3.5, 0, "send_repair", name=name, answering=None)
    assert suite.violations == []


def test_holddown_oracle_rejects_phantom_holddown_claim():
    network = two_node_network()
    suite = single_oracle_suite(network, RepairHolddownOracle)
    network.trace.record(0.0, 0, "request_ignored_holddown",
                         name=AduName(1, DEFAULT_PAGE, 1))
    assert any("no hold-down window is in effect" in violation.message
               for violation in suite.violations)


def test_recovery_reset_clears_holddown_state():
    network = two_node_network()
    suite = single_oracle_suite(network, RepairHolddownOracle)
    name = AduName(1, DEFAULT_PAGE, 1)
    network.trace.record(0.0, 0, "send_repair", name=name, answering=None)
    network.trace.record(0.5, 0, "recovery_reset")
    network.trace.record(1.0, 0, "send_repair", name=name, answering=None)
    assert suite.violations == []


# ----------------------------------------------------------------------
# Suppression / repair timers
# ----------------------------------------------------------------------

def test_suppression_oracle_rejects_double_schedule():
    network = two_node_network()
    suite = single_oracle_suite(network, SuppressionOracle)
    name = AduName(1, DEFAULT_PAGE, 1)
    network.trace.record(0.0, 0, "repair_scheduled", name=name, requester=1)
    network.trace.record(0.1, 0, "repair_scheduled", name=name, requester=1)
    assert any("already pending" in violation.message
               for violation in suite.violations)


def test_suppression_oracle_rejects_repair_without_timer():
    network = two_node_network()
    suite = single_oracle_suite(network, SuppressionOracle)
    network.trace.record(0.0, 0, "send_repair",
                         name=AduName(1, DEFAULT_PAGE, 1), answering=None)
    assert any("without a scheduled repair timer" in violation.message
               for violation in suite.violations)


def test_suppression_oracle_rejects_unjustified_cancellation():
    network = two_node_network()
    suite = single_oracle_suite(network, SuppressionOracle)
    name = AduName(1, DEFAULT_PAGE, 1)
    network.trace.record(0.0, 0, "repair_scheduled", name=name, requester=1)
    # Cancelled with no repair heard at this instant: illegal suppression.
    network.trace.record(0.5, 0, "repair_cancelled", name=name)
    assert any("without a repair heard" in violation.message
               for violation in suite.violations)


# ----------------------------------------------------------------------
# Delivery / consistency
# ----------------------------------------------------------------------

class _StubStore:
    def __init__(self, holdings):
        self.holdings = dict(holdings)

    def have(self, name):
        return name in self.holdings

    def get(self, name):
        return self.holdings[name]


class _StubAgent:
    def __init__(self, holdings, pending=()):
        self.store = _StubStore(holdings)
        self.group = object()
        self._pending = set(pending)

    def pending_requests(self):
        return self._pending


def consistency_suite(network, agents):
    suite = SessionOracleSuite(network, agents=agents,
                               oracles=[DeliveryConsistencyOracle])
    network.trace.enabled = True
    network.trace.subscribe(suite._on_record)
    return suite


def test_delivery_oracle_flags_missing_data():
    network = two_node_network()
    agents = {0: _StubAgent({NAME: "x"}), 1: _StubAgent({})}
    suite = consistency_suite(network, agents)
    network.trace.record(0.0, 0, "send_data", name=NAME)
    with pytest.raises(OracleViolationError) as excinfo:
        suite.verify()
    assert "never received" in str(excinfo.value)


def test_delivery_oracle_accepts_pending_and_abandoned():
    network = two_node_network()
    name2 = AduName(0, DEFAULT_PAGE, 2)
    agents = {0: _StubAgent({NAME: "x", name2: "y"}),
              1: _StubAgent({}, pending={NAME})}
    suite = consistency_suite(network, agents)
    network.trace.record(0.0, 0, "send_data", name=NAME)
    network.trace.record(0.0, 0, "send_data", name=name2)
    network.trace.record(1.0, 1, "request_abandoned", name=name2)
    assert not suite.verify()


def test_delivery_oracle_flags_inconsistent_copies():
    network = two_node_network()
    agents = {0: _StubAgent({NAME: "x"}), 1: _StubAgent({NAME: "DIFFERENT"})}
    suite = consistency_suite(network, agents)
    network.trace.record(0.0, 0, "send_data", name=NAME)
    report = suite.verify(raise_on_violation=False)
    assert any("consistency" in violation.message
               for violation in report.violations)


# ----------------------------------------------------------------------
# Reporting plumbing
# ----------------------------------------------------------------------

def test_violation_report_includes_trace_excerpt():
    suite = run_recovery_session(seed=11)
    # Manufacture a violation through the public path so the excerpt
    # machinery runs against the real trace.
    oracle = suite.oracles[0]
    record = suite.trace.records[len(suite.trace.records) // 2]
    oracle.violate(record.time, record.node, "synthetic failure")
    report = suite.report(context="excerpt test")
    text = report.format()
    assert "synthetic failure" in text
    assert "trace excerpt" in text
    assert "excerpt test" in text
    row = report.violations[0].to_dict()
    assert row["message"] == "synthetic failure"
    assert isinstance(row["excerpt"], list)


def test_suite_reset_clears_violations_and_state():
    network = two_node_network()
    suite = single_oracle_suite(network, RepairHolddownOracle)
    name = AduName(1, DEFAULT_PAGE, 1)
    network.trace.record(0.0, 0, "send_repair", name=name, answering=None)
    network.trace.record(1.0, 0, "send_repair", name=name, answering=None)
    assert suite.violations
    suite.reset()
    assert suite.violations == []
    # State is gone too: a repair right away is legal again.
    network.trace.record(1.5, 0, "send_repair", name=name, answering=None)
    assert suite.violations == []


def test_violation_error_carries_report():
    report = ViolationReport([Violation("x", 1.0, 0, "boom")], context="ctx")
    error = OracleViolationError(report)
    assert error.report is report
    assert "boom" in str(error)


# ----------------------------------------------------------------------
# Regression: leaving mid-recovery must not fire dangling timers
# ----------------------------------------------------------------------

def test_leave_group_mid_recovery_is_safe():
    """A member that leaves while its request timer is pending used to
    crash when the timer fired with no group ('no route to None');
    leave_group now resets recovery state first. The oracles confirm the
    remaining members still behave legally."""
    spec = chain(4)
    network, agents, _ = build_srm_session(spec, [0, 1, 2, 3], seed=21)
    members = [0, 1, 2]
    suite = SessionOracleSuite.attach(network, agents=agents,
                                      assert_delivery_members=members)
    network.add_drop_filter(2, 3, NthPacketDropFilter(
        lambda p: p.kind == "srm-data" and p.origin == 0))
    network.scheduler.schedule(0.0, lambda: agents[0].send_data("a"))
    network.scheduler.schedule(1.0, lambda: agents[0].send_data("b"))
    # Node 3 detects its loss at t=4 (trigger arrives after 3 hops) and
    # schedules a request timer at least 2*d=6 out; leaving at t=4.5
    # leaves that timer dangling.
    at(network, 4.5, agents[3].leave_group)
    network.run(max_events=2_000_000)
    assert network.trace.count("loss_detected", name=AduName(0, DEFAULT_PAGE, 1)) >= 1
    assert not suite.verify(raise_on_violation=False)
    for member in members:
        assert agents[member].store.have(AduName(0, DEFAULT_PAGE, 1))
