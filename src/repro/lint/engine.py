"""The lint engine: walk files, run rules, apply suppressions + baseline."""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint import config
from repro.lint.baseline import Baseline
from repro.lint.rules import FileContext, Rule, all_rules
from repro.lint.suppressions import parse_suppressions
from repro.lint.violations import Violation


@dataclass(slots=True)
class LintReport:
    """Everything one lint run learned."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    waived: int = 0
    parse_errors: list[Violation] = field(default_factory=list)
    #: file -> code -> count, before baseline waiving (ratchet input).
    observed: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Baseline entries with zero observed hits this run — dead debt
    #: that ``--update-baseline`` would drop (``--fail-stale-baseline``
    #: turns them into a CI failure).
    stale: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def format(self, verbose: bool = False) -> str:
        lines = [v.format() for v in self.parse_errors]
        lines += [v.format() for v in self.violations]
        total = len(self.violations) + len(self.parse_errors)
        summary = (f"{self.files_checked} files checked: "
                   f"{total} violation{'s' if total != 1 else ''}")
        extras = []
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed")
        if self.waived:
            extras.append(f"{self.waived} waived by baseline")
        if extras:
            summary += f" ({', '.join(extras)})"
        lines.append(summary)
        return "\n".join(lines)

    def format_json(self) -> str:
        """The whole report as one JSON document (for CI tooling)."""
        def row(violation: Violation) -> dict[str, object]:
            return {"path": violation.path, "line": violation.line,
                    "col": violation.col, "code": violation.code,
                    "message": violation.message}

        payload = {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "waived": self.waived,
            "violations": [row(v) for v in self.parse_errors
                           + self.violations],
            "stale_baseline": [{"path": path, "code": code}
                               for path, code in self.stale],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def format_github(self) -> str:
        """GitHub Actions workflow commands: one annotation per hit.

        Emitted on stdout so the Actions runner attaches each finding
        inline to the PR diff; the trailing summary line is plain text
        (the runner ignores non-command lines).
        """
        lines = [
            f"::error file={v.path},line={v.line},col={v.col},"
            f"title={v.code}::{v.message}"
            for v in self.parse_errors + self.violations
        ]
        lines.append(self.format().splitlines()[-1])
        return "\n".join(lines)


def iter_python_files(roots: Sequence[str | Path]) -> list[Path]:
    """Python files under ``roots``, deterministically ordered.

    Explicitly-given roots are always scanned, even when their name
    matches an excluded directory (so fixture trees can be linted on
    purpose); excluded names are only skipped while *descending*.
    """
    seen: set[Path] = set()
    files: list[Path] = []

    def add(path: Path) -> None:
        if path.suffix == ".py" and path not in seen:
            seen.add(path)
            files.append(path)

    for root in roots:
        root = Path(root)
        if root.is_file():
            add(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(name for name in dirnames
                                 if name not in config.EXCLUDED_DIRS)
            for filename in sorted(filenames):
                add(Path(dirpath) / filename)
    files.sort()
    return files


class LintEngine:
    """Run the rule set over files, with suppressions and a baseline."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None,
                 baseline: Optional[Baseline] = None,
                 select: Optional[Iterable[str]] = None,
                 root: Optional[Path] = None) -> None:
        chosen = list(rules) if rules is not None else list(all_rules())
        if select is not None:
            wanted = set(select)
            unknown = wanted - {rule.code for rule in chosen}
            if unknown:
                raise ValueError(
                    f"unknown rule code(s): {', '.join(sorted(unknown))}")
            chosen = [rule for rule in chosen if rule.code in wanted]
        self.rules = chosen
        self.baseline = baseline if baseline is not None else Baseline()
        #: Paths are displayed (and keyed into the baseline) relative to
        #: this directory. Defaults to the cwd; the CLI anchors it to the
        #: baseline file's directory so a run from any cwd produces the
        #: same baseline keys (a cwd mismatch used to make every waived
        #: violation look brand-new).
        self.root = root

    def check_source(self, path: str, source: str) -> list[Violation]:
        """Raw rule hits for one in-memory file (no suppressions)."""
        tree = ast.parse(source, filename=path)
        ctx = FileContext(path, source, tree)
        violations: list[Violation] = []
        for rule in self.rules:
            if rule.applies_to(ctx):
                violations.extend(rule.check(ctx))
        return violations

    def run(self, roots: Sequence[str | Path]) -> LintReport:
        report = LintReport()
        all_violations: list[Violation] = []
        for file in iter_python_files(roots):
            path = _display_path(file, self.root)
            try:
                source = file.read_text(encoding="utf-8")
                raw = self.check_source(path, source)
            except (SyntaxError, UnicodeDecodeError) as exc:
                line = getattr(exc, "lineno", 1) or 1
                report.parse_errors.append(Violation(
                    path=path, line=line, col=1, code="SRM000",
                    message=f"file does not parse: {exc.msg if isinstance(exc, SyntaxError) else exc}"))
                report.files_checked += 1
                continue
            report.files_checked += 1
            table = parse_suppressions(source)
            kept = []
            for violation in raw:
                if table.covers(violation):
                    report.suppressed += 1
                else:
                    kept.append(violation)
            all_violations.extend(kept)
        reported, waived, observed = self.baseline.apply(all_violations)
        report.violations = reported
        report.waived = waived
        report.observed = observed
        report.stale = self.baseline.stale(observed)
        return report


def _display_path(file: Path, root: Optional[Path] = None) -> str:
    """Posix path relative to ``root`` (default: cwd) when possible.

    Display paths double as baseline keys, so they must be stable for a
    given tree no matter where the linter is launched from — callers
    with a baseline pass its directory as ``root``.
    """
    anchor = (root if root is not None else Path.cwd()).resolve()
    try:
        return file.resolve().relative_to(anchor).as_posix()
    except ValueError:
        return file.as_posix()


def lint_paths(roots: Sequence[str | Path],
               baseline: Optional[Baseline] = None,
               select: Optional[Iterable[str]] = None,
               root: Optional[Path] = None) -> LintReport:
    """One-call convenience: lint ``roots`` and return the report."""
    return LintEngine(baseline=baseline, select=select, root=root).run(roots)
