"""Figure 12: fixed timer parameters over repeated rounds.

Expected shape: on a duplicate-heavy scenario, the request count stays
high (several duplicates, round after round) — the fixed parameters
never learn.
"""

from repro.experiments.figure12_13 import (
    find_adversarial_scenario,
    run_rounds_experiment,
)

from conftest import scale


def test_figure12(once):
    runs = scale(3, 10)
    rounds = scale(40, 100)

    def experiment():
        # The candidate search is cheap relative to the round loop;
        # always search the full Fig. 4 set so the duplicate-heavy
        # scenario is found even at reduced scale.
        scenario = find_adversarial_scenario(candidates=40,
                                             probe_rounds=3)
        return run_rounds_experiment(scenario, adaptive=False,
                                     runs=runs, rounds=rounds,
                                     seed=12)

    result = once(experiment)
    print()
    print(result.format_table(every=max(1, rounds // 8)))

    early = result.mean_requests_over(0, rounds // 4)
    late = result.mean_requests_over(3 * rounds // 4, rounds)
    print(f"mean requests: first quarter {early:.2f}, "
          f"last quarter {late:.2f}")
    # No learning: duplicates stay high throughout.
    assert early > 3.0
    assert late > 3.0
