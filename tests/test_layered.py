"""Tests for receiver-driven layered reliable multicast (Section IX-C)."""

import pytest

from repro.core.config import SrmConfig
from repro.core.layered import (
    LayeredReceiver,
    LayeredSource,
    make_layers,
)
from repro.sim.rng import RandomSource
from repro.topology.chain import chain


def layered_network(bottleneck_bandwidth=None, queue_limit=3,
                    chain_length=5):
    """Source at node 0; receivers hang off the chain. Node boundary
    (1,2) optionally becomes a bottleneck."""
    network = chain(chain_length).build(delivery="hop")
    network.trace.enabled = True
    if bottleneck_bandwidth is not None:
        network.set_link_bandwidth(1, 2, bottleneck_bandwidth,
                                   queue_limit=queue_limit)
    return network


def test_layer_rates_double():
    network = layered_network()
    layers = make_layers(network, 3, base_interval=8.0)
    assert [layer.packet_interval for layer in layers] == [8.0, 4.0, 2.0]
    assert len({layer.group for layer in layers}) == 3


def test_source_sends_on_every_layer():
    network = layered_network()
    layers = make_layers(network, 3, base_interval=8.0)
    source = LayeredSource(network, 0, layers, rng=RandomSource(1))
    receiver = LayeredReceiver(network, 4, layers, rng=RandomSource(2),
                               start_layers=3)
    source.start()
    network.run(until=100.0)
    source.stop()
    network.run(until=400.0)
    assert source.packets_sent(0) > 0
    assert source.packets_sent(2) > source.packets_sent(0)
    # All three layers arrive reliably on the unconstrained path.
    for index in range(3):
        assert receiver.received_on(index) == source.packets_sent(index)


def test_unsubscribed_layer_not_delivered():
    network = layered_network()
    layers = make_layers(network, 3)
    source = LayeredSource(network, 0, layers, rng=RandomSource(1))
    receiver = LayeredReceiver(network, 4, layers, rng=RandomSource(2),
                               start_layers=1)
    source.start()
    network.run(until=80.0)
    source.stop()
    network.run(until=200.0)
    assert receiver.subscribed == 1
    assert receiver.received_on(0) > 0
    assert receiver.received_on(1) == 0
    assert receiver.received_on(2) == 0


def test_pruning_keeps_unwanted_layers_off_links():
    """Traffic for a layer nobody downstream subscribes to never crosses
    the link (DVMRP-style pruning, which RLM depends on)."""
    network = layered_network()
    network.account_bandwidth = True
    layers = make_layers(network, 2)
    source = LayeredSource(network, 0, layers, rng=RandomSource(1))
    # The only receiver subscribes to layer 0 only.
    LayeredReceiver(network, 4, layers, rng=RandomSource(2),
                    start_layers=1)
    source.start()
    network.run(until=50.0)
    source.stop()
    network.run(until=100.0)
    carried = network.link_between(3, 4).packets_carried
    sent_layer0 = source.packets_sent(0)
    sent_layer1 = source.packets_sent(1)
    assert sent_layer1 > 0
    # Only layer-0 data (and its session-less control: none) crossed.
    assert carried <= sent_layer0 + 2


def test_congested_receiver_sheds_layers():
    """Behind a bottleneck that can carry ~1.5 layers, the controller
    drops from 3 subscriptions to a sustainable level."""
    # Base interval 8, sizes 1000: layer rates 125/250/500 -> cumulative
    # 875 through a 300-capacity bottleneck is hopeless; 125 fits.
    network = layered_network(bottleneck_bandwidth=300.0, queue_limit=3)
    layers = make_layers(network, 3, base_interval=8.0)
    source = LayeredSource(network, 0, layers, rng=RandomSource(1))
    far = LayeredReceiver(network, 4, layers, rng=RandomSource(2),
                          start_layers=3, decision_interval=40.0)
    far.start()
    source.start()
    network.run(until=1200.0)
    source.stop()
    far.stop()
    assert far.drops_performed >= 1
    assert far.subscribed < 3


def test_well_connected_receiver_keeps_all_layers():
    network = layered_network(bottleneck_bandwidth=300.0, queue_limit=3)
    layers = make_layers(network, 3, base_interval=8.0)
    source = LayeredSource(network, 0, layers, rng=RandomSource(1))
    # Node 1 is upstream of the bottleneck: unconstrained.
    near = LayeredReceiver(network, 1, layers, rng=RandomSource(3),
                           start_layers=3, decision_interval=40.0)
    far = LayeredReceiver(network, 4, layers, rng=RandomSource(2),
                          start_layers=3, decision_interval=40.0)
    near.start()
    far.start()
    source.start()
    network.run(until=1200.0)
    source.stop()
    near.stop()
    far.stop()
    assert near.subscribed == 3
    assert near.drops_performed == 0
    assert far.subscribed < 3


def test_join_experiment_after_quiet_period():
    """A receiver starting at one layer joins upward when there is no
    congestion."""
    network = layered_network()
    layers = make_layers(network, 3, base_interval=8.0)
    source = LayeredSource(network, 0, layers, rng=RandomSource(1))
    receiver = LayeredReceiver(network, 4, layers, rng=RandomSource(2),
                               start_layers=1, decision_interval=30.0,
                               quiet_windows_to_join=2)
    receiver.start()
    source.start()
    network.run(until=600.0)
    source.stop()
    receiver.stop()
    assert receiver.joins_performed >= 2
    assert receiver.subscribed == 3


def test_subscribed_layers_stay_reliable_under_congestion():
    """Whatever the controller settles on, the layers it keeps are
    delivered reliably by per-layer SRM."""
    network = layered_network(bottleneck_bandwidth=300.0, queue_limit=3)
    layers = make_layers(network, 3, base_interval=8.0)
    source = LayeredSource(network, 0, layers, rng=RandomSource(1))
    far = LayeredReceiver(network, 4, layers, rng=RandomSource(2),
                          start_layers=3, decision_interval=40.0)
    far.start()
    source.start()
    network.run(until=1000.0)
    source.stop()
    far.stop()
    network.run(until=2500.0)  # drain recovery
    agent = far.agents[0]  # the base layer is always kept
    sent = source.packets_sent(0)
    # The base layer is complete up to SRM's recovery horizon: compare
    # against the packets whose existence the receiver knows about.
    base_source_agent = source.agents[0]
    from repro.core.names import AduName, DEFAULT_PAGE
    known_high = agent.reception.highest_seq(0, agent.current_page)
    assert known_high > 0
    for seq in range(1, known_high + 1):
        assert agent.store.have(AduName(0, agent.current_page, seq)), seq
