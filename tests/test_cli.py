"""Tests for the experiment CLI."""

import pytest

from repro.cli import COMMANDS, FIGURE_SEEDS, build_parser, main


def test_every_command_has_a_seed_default():
    assert set(FIGURE_SEEDS) == set(COMMANDS)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "figure3" in capsys.readouterr().out


def test_figure3_runs_small(capsys):
    assert main(["figure3", "--sims", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3a" in out
    assert "Figure 3c" in out


def test_robustness_runs_small(capsys):
    assert main(["robustness", "--rounds", "1"]) == 0
    assert "Robustness sweep" in capsys.readouterr().out


def test_congestion_runs(capsys):
    assert main(["congestion"]) == 0
    out = capsys.readouterr().out
    assert "unpaced" in out and "paced" in out


def test_seed_override(capsys):
    assert main(["figure5", "--sims", "2", "--seed", "99"]) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure99"])


def test_runner_flags_parse_with_defaults():
    args = build_parser().parse_args(["figure4"])
    assert args.jobs == 1
    assert args.no_cache is False
    assert args.manifest is None


def test_figure4_with_jobs_and_manifest(tmp_path, capsys):
    manifest = tmp_path / "run.jsonl"
    assert main(["figure4", "--sims", "1", "--jobs", "2",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--manifest", str(manifest)]) == 0
    out = capsys.readouterr().out
    assert "Figure 4a" in out
    from repro.runner import read_manifest
    rows = read_manifest(manifest, "task")
    assert rows and all(row["status"] == "ok" for row in rows)


def test_no_cache_flag_skips_cache(tmp_path, capsys):
    assert main(["figure15", "--sims", "1", "--no-cache",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert not (tmp_path / "cache").exists()


def test_serial_commands_have_no_runner_flags():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["robustness", "--jobs", "2"])


def test_metrics_flag_persists_bundle(tmp_path, capsys):
    bundle_path = tmp_path / "metrics.json"
    assert main(["figure3", "--sims", "1", "--no-cache",
                 "--metrics", str(bundle_path)]) == 0
    capsys.readouterr()
    from repro.metrics import load_bundle
    bundle = load_bundle(bundle_path)
    assert bundle.rounds > 0
    assert bundle.headline()["loss_events"] > 0


def test_report_command_runs_figure_and_prints_metrics(tmp_path, capsys):
    save_path = tmp_path / "fig3.json"
    assert main(["report", "figure3", "--sims", "1", "--no-cache",
                 "--save", str(save_path)]) == 0
    out = capsys.readouterr().out
    # The standard figure table first (byte-compatible with `figure3`),
    # then the metrics report.
    assert "Figure 3a" in out
    assert "metrics report" in out
    assert "per loss event" in out
    assert save_path.exists()


def test_report_command_reads_saved_bundle(tmp_path, capsys):
    save_path = tmp_path / "fig3.json"
    assert main(["report", "figure3", "--sims", "1", "--no-cache",
                 "--save", str(save_path)]) == 0
    capsys.readouterr()
    assert main(["report", str(save_path)]) == 0
    out = capsys.readouterr().out
    assert "metrics report" in out
    assert "Figure 3a" not in out  # no re-run: rendered from the file


def test_report_rejects_unknown_target(capsys):
    assert main(["report", "not-a-figure"]) == 2
    assert "neither" in capsys.readouterr().err


def test_compare_exit_codes(tmp_path, capsys):
    from repro.metrics import load_bundle, save_bundle

    baseline_path = tmp_path / "baseline.json"
    assert main(["report", "figure3", "--sims", "1", "--no-cache",
                 "--save", str(baseline_path)]) == 0
    capsys.readouterr()

    # Identical bundles: clean exit.
    assert main(["compare", str(baseline_path), str(baseline_path)]) == 0
    assert "OK" in capsys.readouterr().out

    # Inject a >10% regression into the recovery-delay distribution:
    # non-zero exit, and the regressing keys are named.
    worse = load_bundle(baseline_path)
    worse.recovery_ratios = [r * 1.5 for r in worse.recovery_ratios]
    worse_path = save_bundle(worse, tmp_path / "worse.json")
    assert main(["compare", str(baseline_path), str(worse_path)]) == 2
    assert "REGRESSION" in capsys.readouterr().out

    # A loose threshold lets the same candidate through.
    assert main(["compare", str(baseline_path), str(worse_path),
                 "--threshold", "10"]) == 0


def test_figure12_accepts_runner_flags(tmp_path, capsys):
    manifest = tmp_path / "fig12.jsonl"
    assert main(["figure12", "--runs", "1", "--rounds", "2", "--no-cache",
                 "--manifest", str(manifest)]) == 0
    assert "Figure 12" in capsys.readouterr().out
    from repro.runner import read_manifest
    rows = read_manifest(manifest, "task")
    assert rows and all(row["status"] == "ok" for row in rows)
