"""SRM001/SRM002 — the determinism core: randomness, clocks, set order.

These rules police the repo's reproducibility contract: every draw
flows through :class:`repro.sim.rng.RandomSource`, every timestamp
through the scheduler clock, and nothing whose order reaches the event
stream may depend on hash order.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint import config
from repro.lint.rules import FileContext, Rule, register
from repro.lint.violations import Violation

#: attribute accesses on these module aliases are nondeterminism, full
#: stop: the module-level RNG is unseeded process state.
_RANDOM_MODULES = {"random", "numpy.random"}

#: (module, attribute) pairs that read the wall clock or OS entropy.
_FORBIDDEN_ATTRS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class NondeterministicSourceRule(Rule):
    """SRM001: unseeded randomness or wall-clock reads in domain code."""

    code = "SRM001"
    name = "nondeterministic-source"
    summary = ("randomness must flow through repro.sim.rng, time through "
               "the scheduler clock")
    domain_only = True

    def applies_to(self, ctx: FileContext) -> bool:
        if config.matches_module(ctx.path, config.RNG_BOUNDARY):
            return False  # repro.sim.rng IS the blessed boundary
        if config.matches_module(ctx.path, config.WALL_CLOCK_BOUNDARY):
            return False  # repro.live.clock IS the wall-clock boundary
        return super().applies_to(ctx)

    def check(self, ctx: FileContext) -> list[Violation]:
        aliases = self._module_aliases(ctx.tree)
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                names = ", ".join(alias.name for alias in node.names)
                out.append(self.violation(
                    ctx, node,
                    f"import of unseeded randomness ({names}) from "
                    f"'random'; route draws through "
                    f"repro.sim.rng.RandomSource"))
                continue
            if not isinstance(node, ast.Attribute):
                continue
            dotted = _dotted(node)
            if dotted is None:
                continue
            head, _, attr = dotted.rpartition(".")
            module = aliases.get(head)
            if module is None:
                # Resolve a leading alias: ``np.random`` -> numpy.random.
                first, _, rest = head.partition(".")
                base = aliases.get(first, first)
                module = f"{base}.{rest}" if rest else base
            if module in _RANDOM_MODULES:
                out.append(self.violation(
                    ctx, node,
                    f"unseeded randomness '{dotted}'; route draws "
                    f"through repro.sim.rng.RandomSource"))
            elif (module.rpartition(".")[2], attr) in _FORBIDDEN_ATTRS \
                    and module.split(".")[0] in {"time", "datetime", "os",
                                                 "uuid"}:
                out.append(self.violation(
                    ctx, node,
                    f"wall-clock / OS-entropy read '{dotted}'; simulation "
                    f"time comes from the scheduler clock"))
        return out

    @staticmethod
    def _module_aliases(tree: ast.Module) -> dict[str, str]:
        """Local alias -> canonical module name, from import statements."""
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    aliases[item.asname or item.name] = item.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for item in node.names:
                    aliases[item.asname or item.name] = \
                        f"{node.module}.{item.name}"
        return aliases


def _is_set_expr(node: ast.AST, assigned_sets: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in {"set", "frozenset"}:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, assigned_sets)
                or _is_set_expr(node.right, assigned_sets))
    if isinstance(node, ast.Name):
        return node.id in assigned_sets
    return False


@register
class UnorderedSetIterationRule(Rule):
    """SRM002: iterating a set feeds hash order into the event stream."""

    code = "SRM002"
    name = "unordered-set-iteration"
    summary = "wrap set iteration in sorted(...) or keep a dict/list"
    domain_only = True

    def check(self, ctx: FileContext) -> list[Violation]:
        assigned = self._statically_set_names(ctx.tree)
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name) and node.func.id in {
                        "list", "tuple"} and node.args:
                iters.append(node.args[0])
            for candidate in iters:
                if not _is_set_expr(candidate, assigned):
                    continue
                if self._order_insensitive(ctx, node):
                    continue
                out.append(self.violation(
                    ctx, candidate,
                    "iteration over an unordered set; hash order is "
                    "per-process — iterate sorted(...) or use a dict"))
        return out

    @staticmethod
    def _statically_set_names(tree: ast.Module) -> set[str]:
        """Names whose every assignment in the file is a set expression."""
        set_names: set[str] = set()
        other_names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                bucket = (set_names if _is_set_expr(node.value, set())
                          else other_names)
                bucket.add(node.targets[0].id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name) and node.value is not None:
                bucket = (set_names if _is_set_expr(node.value, set())
                          else other_names)
                bucket.add(node.target.id)
        return set_names - other_names

    def _order_insensitive(self, ctx: FileContext, node: ast.AST) -> bool:
        """True when the surrounding expression discards iteration order."""
        parent = ctx.parent(node)
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name) \
                and parent.func.id in {"sorted", "sum", "min", "max", "len",
                                       "set", "frozenset", "any", "all"}:
            return True
        # ``sorted(x for x in some_set)`` / ``{x for x in some_set}``:
        # a set-comprehension result is itself unordered until consumed,
        # and a generator fed straight into sorted() is fine.
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.GeneratorExp) and isinstance(
                parent, ast.Call) and isinstance(parent.func, ast.Name) \
                and parent.func.id in {"sorted", "sum", "min", "max",
                                       "any", "all", "set", "frozenset"}:
            return True
        return False
