#!/usr/bin/env python
"""Quickstart: SRM loss recovery on a small tree, narrated.

Builds an 8-node chain where every node is a session member, drops the
first data packet on a mid-chain link, and traces the whole recovery:
gap detection at the members downstream of the failure, the single
suppressed request from the node adjacent to the failure, and the single
repair from the node just upstream — the Section IV-A story, live.

Run:  python examples/quickstart.py
"""

from repro import AduName, RandomSource, SrmAgent, SrmConfig
from repro.core.names import DEFAULT_PAGE
from repro.core.stats import analyze_loss_event
from repro.net.link import NthPacketDropFilter
from repro.topology import chain


def main() -> None:
    # 1. A topology: nodes 0-7 in a chain, unit delay per link.
    spec = chain(8)
    network = spec.build()
    network.trace.enabled = True

    # 2. A session: one multicast group, one SRM agent per member.
    group = network.groups.allocate("quickstart")
    agents = {}
    for node in range(8):
        agent = SrmAgent(SrmConfig(c1=1.0, c2=0.0, d1=1.0, d2=0.0),
                         RandomSource(node))
        network.attach(node, agent)
        agent.join_group(group)
        agents[node] = agent

    # 3. A failure: the link between nodes 3 and 4 drops the next data
    #    packet (the paper's "congested link").
    network.add_drop_filter(3, 4, NthPacketDropFilter(
        lambda packet: packet.kind == "srm-data"))

    # 4. The source sends two packets, one time unit apart. Packet 1 is
    #    lost below node 3; packet 2 reveals the gap.
    source = agents[0]
    network.scheduler.schedule(0.0, lambda: source.send_data("hello"))
    network.scheduler.schedule(1.0, lambda: source.send_data("world"))

    # 5. Run to quiescence and inspect.
    network.run()
    lost = AduName(0, DEFAULT_PAGE, 1)
    report = analyze_loss_event(network.trace, lost)

    print("=== protocol trace ===")
    interesting = ("send_data", "loss_detected", "send_request",
                   "send_repair", "data_recovered")
    for row in network.trace:
        if row.kind in interesting:
            print(f"  {row}")

    print()
    print("=== recovery report for", lost, "===")
    print(f"  members that detected the loss : {report.losses_detected}")
    print(f"  requests multicast             : {report.requests}")
    print(f"  repairs multicast              : {report.repairs}")
    for member, timing in sorted(report.recoveries.items()):
        print(f"  member {member}: recovered {timing.delay:.1f} units "
              f"after detection = {timing.ratio:.2f} of its RTT "
              f"to the source")
    farthest = report.last_member_recovery_ratio()
    print(f"  last member's delay/RTT        : {farthest:.2f} "
          f"(unicast recovery could never beat 1.0)")
    assert all(agent.store.have(lost) for agent in agents.values())
    print("\nAll 8 members hold the data. Reliable multicast, no ACKs.")


if __name__ == "__main__":
    main()
