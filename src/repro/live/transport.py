"""Live transports: the proxy link and the UDP socket backends.

Transport matrix (see docs/live.md):

* **mesh** — no sockets at all. A single :class:`LiveEngine` hosts every
  member in-process and delivers multicast locally through a
  :class:`LinkEmulator`, the loss/delay/reorder-injecting proxy link.
  Deterministic-ish (all randomness is seeded; only callback timing is
  real) and CI-safe.
* **udp-peer** (:class:`UdpPeerTransport`) — one process per member on
  UDP loopback; every frame is unicast-fanned-out to a fixed list of
  peer ports. No multicast routing required, works everywhere.
* **udp-multicast** (:class:`UdpMulticastTransport`) — real IP multicast
  on a 224.x group, loopback-enabled, which is how the paper's wb
  actually ran.

Both socket transports frame packets with :mod:`repro.live.framing`
(fragmenting frames that exceed the datagram budget, reassembling
per-sender on receive) and hand *decoded wire dicts* to the engine; all
garbage is dropped and counted, never raised.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, \
    Tuple

from repro.core.messages import KIND_DATA, KIND_REPAIR, WireDecodeError
from repro.live.framing import (FragmentReassembler, MAX_DATAGRAM,
                                decode_frame, split_datagrams)
from repro.net.packet import Packet
from repro.sim.rng import RandomSource

#: A decoded frame (wire dict) handed up to the engine.
FrameHandler = Callable[[Dict[str, Any]], None]

#: Kinds the proxy link drops by default: payload traffic, so recovery
#: is exercised, while session/control traffic survives (matching the
#: matched-sim loss model in repro.live.soak).
DEFAULT_LOSS_KINDS: FrozenSet[str] = frozenset({KIND_DATA, KIND_REPAIR})


class LinkEmulator:
    """The proxy link: seeded Bernoulli loss, delay jitter, reordering.

    One emulator models every (sender, receiver) path of the in-process
    mesh — each delivery consults it independently, so losses are
    per-receiver, like per-leaf drop filters in the sim. On the socket
    transports it sits on the *receive* path, emulating an impaired last
    hop.
    """

    __slots__ = ("rng", "loss", "delay", "jitter", "reorder", "loss_kinds",
                 "dropped", "delivered")

    def __init__(self, rng: RandomSource, loss: float = 0.0,
                 delay: float = 0.01, jitter: float = 0.0,
                 reorder: float = 0.0,
                 loss_kinds: FrozenSet[str] = DEFAULT_LOSS_KINDS) -> None:
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss probability {loss} outside [0, 1]")
        self.rng = rng
        self.loss = loss
        self.delay = delay
        self.jitter = jitter
        self.reorder = reorder
        self.loss_kinds = loss_kinds
        self.dropped = 0
        self.delivered = 0

    def drops(self, packet: Packet) -> bool:
        """One independent Bernoulli trial for this (packet, receiver)."""
        if self.loss and packet.kind in self.loss_kinds \
                and self.rng.random() < self.loss:
            self.dropped += 1
            return True
        self.delivered += 1
        return False

    def delay_draw(self) -> float:
        """Propagation delay for one delivery, with jitter and reorder.

        A reordered delivery is held back one extra base delay, putting
        it behind packets sent after it.
        """
        delay = self.delay
        if self.jitter:
            delay += self.rng.uniform(-self.jitter, self.jitter)
        if self.reorder and self.rng.random() < self.reorder:
            delay += self.delay
        return max(0.0, delay)


# ----------------------------------------------------------------------
# UDP socket transports
# ----------------------------------------------------------------------


class _DatagramProtocol(asyncio.DatagramProtocol):
    """Routes received datagrams into the owning transport."""

    def __init__(self, owner: "_UdpTransportBase") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes, addr: Any) -> None:
        self._owner._datagram_received(data, (str(addr[0]), int(addr[1])))

    def error_received(self, exc: Exception) -> None:
        self._owner.socket_errors += 1


class _UdpTransportBase:
    """Shared framing/reassembly receive path of both UDP transports."""

    def __init__(self, max_datagram: int = MAX_DATAGRAM) -> None:
        self.max_datagram = max_datagram
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._on_frame: Optional[FrameHandler] = None
        self._frame_id = 0
        #: One reassembler per remote (host, port).
        self._reassemblers: Dict[Tuple[str, int], FragmentReassembler] = {}
        self.frames_sent = 0
        self.frames_received = 0
        #: Datagrams/frames rejected by the framing layer.
        self.framing_errors = 0
        self.socket_errors = 0

    # -- overridden by subclasses --------------------------------------

    async def open(self, loop: asyncio.AbstractEventLoop,
                   on_frame: FrameHandler) -> None:
        raise NotImplementedError

    def _fan_out(self, datagram: bytes) -> None:
        raise NotImplementedError

    # -- common paths --------------------------------------------------

    def send_frame(self, frame: bytes) -> None:
        """Fragment and transmit one frame to every peer."""
        if self._transport is None:
            return
        self._frame_id += 1
        for datagram in split_datagrams(frame, self._frame_id,
                                        self.max_datagram):
            self._fan_out(datagram)
        self.frames_sent += 1

    def _datagram_received(self, data: bytes,
                           addr: Tuple[str, int]) -> None:
        reassembler = self._reassemblers.get(addr)
        if reassembler is None:
            reassembler = FragmentReassembler()
            self._reassemblers[addr] = reassembler
        before = reassembler.errors
        frame = reassembler.feed(data)
        self.framing_errors += reassembler.errors - before
        if frame is None:
            return
        try:
            wire = decode_frame(frame)
        except WireDecodeError:
            self.framing_errors += 1
            return
        self.frames_received += 1
        if self._on_frame is not None:
            self._on_frame(wire)

    async def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    @property
    def local_port(self) -> Optional[int]:
        if self._transport is None:
            return None
        name = self._transport.get_extra_info("sockname")
        return int(name[1]) if name else None


class UdpPeerTransport(_UdpTransportBase):
    """Loopback 'multicast' by unicast fan-out over a fixed port list.

    Every member process binds one port and knows every peer's port;
    a send goes to each peer individually. This needs no multicast
    routing and is what ``repro live wb`` uses by default.
    """

    def __init__(self, listen_port: int, peer_ports: Sequence[int],
                 host: str = "127.0.0.1",
                 max_datagram: int = MAX_DATAGRAM) -> None:
        super().__init__(max_datagram)
        self.host = host
        self.listen_port = listen_port
        self.peer_ports: List[int] = [port for port in peer_ports
                                      if port != listen_port]

    async def open(self, loop: asyncio.AbstractEventLoop,
                   on_frame: FrameHandler) -> None:
        self._on_frame = on_frame
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _DatagramProtocol(self),
            local_addr=(self.host, self.listen_port))
        self._transport = transport

    def _fan_out(self, datagram: bytes) -> None:
        assert self._transport is not None
        for port in self.peer_ports:
            self._transport.sendto(datagram, (self.host, port))


class UdpMulticastTransport(_UdpTransportBase):
    """Real IP multicast (loopback-enabled), as the paper's wb ran.

    All members share one (group, port); the OS fans out. Our own
    frames loop back too — the engine discards them by origin id.
    """

    def __init__(self, group: str = "224.101.13.95", port: int = 47123,
                 ttl: int = 1, interface: str = "127.0.0.1",
                 max_datagram: int = MAX_DATAGRAM) -> None:
        super().__init__(max_datagram)
        self.group = group
        self.port = port
        self.ttl = ttl
        self.interface = interface

    async def open(self, loop: asyncio.AbstractEventLoop,
                   on_frame: FrameHandler) -> None:
        self._on_frame = on_frame
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM,
                             socket.IPPROTO_UDP)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if hasattr(socket, "SO_REUSEPORT"):  # several members per host
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind(("", self.port))
        membership = struct.pack("4s4s", socket.inet_aton(self.group),
                                 socket.inet_aton(self.interface))
        sock.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP,
                        membership)
        sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL,
                        self.ttl)
        sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
        sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_IF,
                        socket.inet_aton(self.interface))
        sock.setblocking(False)
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _DatagramProtocol(self), sock=sock)
        self._transport = transport

    def _fan_out(self, datagram: bytes) -> None:
        assert self._transport is not None
        self._transport.sendto(datagram, (self.group, self.port))
