"""Tests for the experiment CLI."""

import pytest

from repro.cli import COMMANDS, FIGURE_SEEDS, build_parser, main


def test_every_command_has_a_seed_default():
    assert set(FIGURE_SEEDS) == set(COMMANDS)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "figure3" in capsys.readouterr().out


def test_figure3_runs_small(capsys):
    assert main(["figure3", "--sims", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3a" in out
    assert "Figure 3c" in out


def test_robustness_runs_small(capsys):
    assert main(["robustness", "--rounds", "1"]) == 0
    assert "Robustness sweep" in capsys.readouterr().out


def test_congestion_runs(capsys):
    assert main(["congestion"]) == 0
    out = capsys.readouterr().out
    assert "unpaced" in out and "paced" in out


def test_seed_override(capsys):
    assert main(["figure5", "--sims", "2", "--seed", "99"]) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure99"])
