"""Tests for the experiment harness and (small) runs of each figure."""

import pytest

from repro.core.config import SrmConfig
from repro.experiments.common import (
    LossRecoverySimulation,
    Scenario,
    SeriesPoint,
    candidate_drop_edges,
    choose_scenario,
    format_quartile_table,
    run_rounds,
    run_single_round,
)
from repro.sim.rng import RandomSource
from repro.topology.btree import balanced_tree
from repro.topology.chain import chain
from repro.topology.star import star


def test_candidate_drop_edges_cover_member_paths():
    network = chain(6).build()
    edges = candidate_drop_edges(network, 0, [0, 2, 5])
    assert edges == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
    edges_partial = candidate_drop_edges(network, 0, [0, 2])
    assert edges_partial == [(0, 1), (1, 2)]


def test_choose_scenario_properties():
    rng = RandomSource(7)
    spec = balanced_tree(100, 4)
    scenario = choose_scenario(spec, session_size=10, rng=rng)
    assert len(scenario.members) == 10
    assert scenario.source in scenario.members
    network = spec.build()
    tree = network.source_tree(scenario.source)
    parent, child = scenario.drop_edge
    assert tree.parent[child] == parent
    assert scenario.session_size == 10


def test_choose_scenario_adjacent_drop():
    rng = RandomSource(7)
    spec = balanced_tree(50, 4)
    scenario = choose_scenario(spec, session_size=20, rng=rng,
                               adjacent_drop=True)
    assert scenario.drop_edge[0] == scenario.source


def test_choose_scenario_session_too_large():
    with pytest.raises(ValueError):
        choose_scenario(chain(4), session_size=10, rng=RandomSource(1))


def test_run_round_recovers_everyone():
    scenario = Scenario(spec=chain(6), members=list(range(6)), source=0,
                        drop_edge=(2, 3))
    outcome = run_single_round(scenario, seed=1)
    assert outcome.recovered
    assert outcome.requests >= 1
    assert outcome.repairs >= 1
    assert outcome.last_member_ratio is not None
    assert outcome.closest_request_ratio is not None


def test_rounds_are_independent_resets():
    scenario = Scenario(spec=chain(6), members=list(range(6)), source=0,
                        drop_edge=(2, 3))
    simulation = LossRecoverySimulation(scenario, seed=1)
    first = simulation.run_round()
    second = simulation.run_round()
    assert first.recovered and second.recovered
    assert first.name != second.name
    assert simulation.rounds_run == 2


def test_affected_members():
    scenario = Scenario(spec=chain(6), members=[0, 1, 4, 5], source=0,
                        drop_edge=(2, 3))
    simulation = LossRecoverySimulation(scenario, seed=1)
    assert simulation.affected_members() == [4, 5]


def test_run_rounds_helper():
    scenario = Scenario(spec=star(10), members=list(range(1, 11)), source=1,
                        drop_edge=(1, 0))
    outcomes = run_rounds(scenario, rounds=5, seed=2)
    assert len(outcomes) == 5
    assert all(outcome.recovered for outcome in outcomes)


def test_series_point_and_table():
    point = SeriesPoint(x=10)
    for value in (1.0, 2.0, 3.0):
        point.add("metric", value)
    point.add("metric", None)  # ignored
    assert point.series("metric") == [1.0, 2.0, 3.0]
    table = format_quartile_table([point], "metric", "x", "Title")
    assert "Title" in table
    assert "2.000" in table


# ----------------------------------------------------------------------
# Small runs of every figure driver
# ----------------------------------------------------------------------

def test_figure3_small():
    from repro.experiments.figure3 import run_figure3
    result = run_figure3(sizes=(10, 20), sims=4, seed=1)
    assert len(result.points) == 2
    table = result.format_table()
    assert "Figure 3a" in table and "Figure 3c" in table
    for point in result.points:
        assert len(point.series("requests")) == 4


def test_figure4_small():
    from repro.experiments.figure4 import run_figure4
    result = run_figure4(sizes=(15,), sims=3, seed=1)
    assert len(result.points) == 1
    assert len(result.points[0].series("repairs")) == 3


def test_figure5_small():
    from repro.experiments.figure5 import run_figure5
    result = run_figure5(c2_values=(0, 20), sims=4,
                         group_size=20, seed=1)
    assert len(result.points) == 2
    low_c2, high_c2 = result.points
    # More randomization -> fewer requests, more delay (both panels).
    assert high_c2.sim_requests_mean < low_c2.sim_requests_mean
    assert high_c2.analysis_requests < low_c2.analysis_requests
    assert "Figure 5" in result.format_table()


def test_figure6_small():
    from repro.experiments.figure6 import run_figure6
    result = run_figure6(c2_values=(0, 10), failure_hops=(1, 5),
                         sims=3, chain_length=30, seed=1)
    assert set(result.series) == {1, 5}
    assert "Figure 6" in result.format_table()


def test_figure7_small():
    from repro.experiments.figure7 import run_figure7
    result = run_figure7(c2_values=(0, 8), hops_values=(1, 2),
                         sims=3, num_nodes=40, seed=1)
    assert set(result.series) == {1, 2}
    assert len(result.mean_requests(1)) == 2


def test_figure8_small():
    from repro.experiments.figure8 import run_figure8
    result = run_figure8(c2_values=(0, 8), hops_values=(1,),
                         sims=3, num_nodes=120, session_size=20,
                         seed=1)
    assert set(result.series) == {1}


def test_figure12_13_small():
    from repro.experiments.figure12_13 import (
        find_adversarial_scenario,
        run_rounds_experiment,
    )
    scenario = find_adversarial_scenario(seed=4, session_size=20,
                                         candidates=5, probe_rounds=1)
    result = run_rounds_experiment(scenario, adaptive=True, runs=2,
                                   rounds=5, seed=1)
    assert result.adaptive
    assert len(result.requests) == 2
    assert len(result.requests[0]) == 5
    assert "adaptive" in result.format_table(every=2)


def test_figure14_small():
    from repro.experiments.figure14 import run_figure14
    result = run_figure14(sizes=(15,), sims=2, rounds=5, seed=2)
    assert len(result.points) == 1
    assert "round 5" in result.format_table()


def test_figure14_rejects_non_adaptive_config():
    from repro.experiments.figure14 import run_figure14
    with pytest.raises(ValueError):
        run_figure14(config=SrmConfig(adaptive=False))


def test_figure15_small():
    from repro.experiments.figure15 import run_figure15
    result = run_figure15(sizes=(40,), sims=5, num_nodes=200,
                          seed=3)
    assert len(result.points) == 1
    fractions = result.points[0].series("fraction")
    assert len(fractions) == 5
    assert all(0 < fraction <= 1 for fraction in fractions)
    assert "Figure 15" in result.format_table()
