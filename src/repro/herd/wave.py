"""One live head event tracking the minimum of a timer-expiry array.

The agent engine arms one scheduler event per pending timer; the herd
keeps a whole wave of timers as a float64 expiry array (``inf`` = idle)
and arms exactly *one* event — at the array minimum. Handlers mutate the
array freely and call :meth:`resync`; when the head fires, every member
whose expiry equals the fire time (an exact float comparison — herd
expiries are built ``now + delay`` with the same one addition the agent
uses, so equal instants are bit-equal) is handed to the callback as one
tie batch, mirroring the calendar backend's same-instant draining.

Re-arming uses ``cancel()`` + ``schedule_at(absolute)`` rather than the
relative ``reschedule_event``: a relative re-arm recomputes ``now +
remaining`` and can drift a ulp away from the agent's expiry, which
would silently break the differential equivalence suite.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

import numpy as np

from repro.sim.scheduler import EventScheduler

FloatArray = Any
IntArray = Any


class HerdWave:
    """Bulk scheduler citizen: one head event over an expiry array."""

    __slots__ = ("label", "_scheduler", "_expiries", "_fire", "_event",
                 "_armed")

    def __init__(self, scheduler: EventScheduler, expiries: FloatArray,
                 fire: Callable[[IntArray], None], label: str = "") -> None:
        self.label = label
        self._scheduler = scheduler
        self._expiries = expiries
        self._fire = fire
        self._event: Optional[Any] = None
        self._armed = math.inf

    @property
    def armed_at(self) -> float:
        """The head's current fire time (inf when idle)."""
        return self._armed

    def resync(self) -> None:
        """Re-arm the head after any mutation of the expiry array."""
        head = float(np.min(self._expiries)) if self._expiries.size \
            else math.inf
        if head == self._armed:  # lint: ignore[SRM004] exact re-arm check
            return
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._armed = head
        if not math.isinf(head):
            self._event = self._scheduler.schedule_at(head, self._head_fire)

    def cancel(self) -> None:
        """Retire the wave (end of round)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._armed = math.inf

    def _head_fire(self) -> None:
        now = self._scheduler.now
        self._event = None
        self._armed = math.inf
        # Deliberate exact-instant tie batch (see module docstring).
        idx = np.flatnonzero(self._expiries == now)  # lint: ignore[SRM004]
        self._fire(idx)
        self.resync()
