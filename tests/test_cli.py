"""Tests for the experiment CLI."""

import pytest

from repro.cli import COMMANDS, FIGURE_SEEDS, build_parser, main


def test_every_command_has_a_seed_default():
    assert set(FIGURE_SEEDS) == set(COMMANDS)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "figure3" in capsys.readouterr().out


def test_figure3_runs_small(capsys):
    assert main(["figure3", "--sims", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3a" in out
    assert "Figure 3c" in out


def test_robustness_runs_small(capsys):
    assert main(["robustness", "--rounds", "1"]) == 0
    assert "Robustness sweep" in capsys.readouterr().out


def test_congestion_runs(capsys):
    assert main(["congestion"]) == 0
    out = capsys.readouterr().out
    assert "unpaced" in out and "paced" in out


def test_seed_override(capsys):
    assert main(["figure5", "--sims", "2", "--seed", "99"]) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure99"])


def test_runner_flags_parse_with_defaults():
    args = build_parser().parse_args(["figure4"])
    assert args.jobs == 1
    assert args.no_cache is False
    assert args.manifest is None


def test_figure4_with_jobs_and_manifest(tmp_path, capsys):
    manifest = tmp_path / "run.jsonl"
    assert main(["figure4", "--sims", "1", "--jobs", "2",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--manifest", str(manifest)]) == 0
    out = capsys.readouterr().out
    assert "Figure 4a" in out
    from repro.runner import read_manifest
    rows = read_manifest(manifest, "task")
    assert rows and all(row["status"] == "ok" for row in rows)


def test_no_cache_flag_skips_cache(tmp_path, capsys):
    assert main(["figure15", "--sims", "1", "--no-cache",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert not (tmp_path / "cache").exists()


def test_serial_commands_have_no_runner_flags():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["robustness", "--jobs", "2"])
