"""Integrity tags for whiteboard data (Section III-E).

The paper: "If data somehow becomes corrupt ... it can spread like a
virus throughout the wb session. When the corrupted data is used to
answer repair requests, the corrupted data is distributed throughout the
multicast group and persists for the life of the session. To avoid this,
each piece of data can be accompanied by a tag that not only
authenticates the source of the data but also verifies its integrity."

This module implements the integrity half (a keyed digest over the name
and a canonical rendering of the operation); real deployments would sign
the digest. :class:`SealedOp` wraps any wb operation; corrupted copies
fail verification and are refused instead of being rendered or used to
answer repairs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.names import AduName
from repro.wb.drawops import ClearOp, DeleteOp, DrawOp


class IntegrityError(ValueError):
    """Raised when a sealed operation fails verification."""


def _canonical(op: Any) -> bytes:
    """A stable byte rendering of a wb operation."""
    if isinstance(op, DrawOp):
        parts = ("draw", op.shape.value, repr(op.coords), op.color,
                 repr(op.width), repr(op.text), repr(op.timestamp))
    elif isinstance(op, DeleteOp):
        parts = ("delete", str(op.target), repr(op.timestamp))
    elif isinstance(op, ClearOp):
        parts = ("clear", repr(op.timestamp))
    else:
        raise TypeError(f"cannot canonicalize {op!r}")
    return "|".join(parts).encode()


def compute_tag(name: AduName, op: Any, key: bytes = b"") -> str:
    """The integrity tag: a keyed BLAKE2s digest over (name, op)."""
    digest = hashlib.blake2s(key=key or b"srm-wb", digest_size=16)
    digest.update(str(name).encode())
    digest.update(b"\x00")
    digest.update(_canonical(op))
    return digest.hexdigest()


@dataclass(frozen=True)
class SealedOp:
    """A wb operation accompanied by its integrity tag."""

    op: Any
    tag: str

    @classmethod
    def seal(cls, name: AduName, op: Any, key: bytes = b"") -> "SealedOp":
        return cls(op=op, tag=compute_tag(name, op, key))

    def verify(self, name: AduName, key: bytes = b"") -> bool:
        try:
            return compute_tag(name, self.op, key) == self.tag
        except TypeError:
            return False

    def unseal(self, name: AduName, key: bytes = b"") -> Any:
        """Return the operation, raising :class:`IntegrityError` if the
        tag does not match (corrupted or forged data)."""
        if not self.verify(name, key):
            raise IntegrityError(f"integrity tag mismatch for {name}")
        return self.op


def corrupt(sealed: SealedOp, mutated_op: Optional[Any] = None) -> SealedOp:
    """A corrupted copy: the op mutated, the stale tag kept.

    Models the paper's in-memory corruption scenario (application bug or
    system failure) for tests and demos.
    """
    if mutated_op is None and isinstance(sealed.op, DrawOp):
        original: DrawOp = sealed.op
        mutated_op = DrawOp(shape=original.shape, coords=original.coords,
                            color="corrupted", width=original.width,
                            text=original.text,
                            timestamp=original.timestamp)
    if mutated_op is None:
        raise ValueError("provide mutated_op for non-DrawOp operations")
    return SealedOp(op=mutated_op, tag=sealed.tag)
