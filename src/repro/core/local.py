"""Local recovery (Section VII-B).

Two layers:

* Protocol support lives in :class:`repro.core.agent.SrmAgent`
  (``request_ttl`` plus ``local_repair_mode`` of "one-step"/"two-step").
* This module provides the *idealized* executions the paper evaluates in
  Fig. 15: "we assume that ... the request/repair algorithms exhibit
  their optimal behavior. That is, there is a single request and a single
  repair, and both come from the members closest to the point of
  failure", with the requester knowing h (the minimum TTL reaching the
  whole loss neighborhood) and H (the minimum TTL reaching some member
  outside it).

All TTL arithmetic uses the network's per-link thresholds via
``SourceTree.ttl_required``, so it is valid for heterogeneous thresholds,
not just the all-ones case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.net.network import Network
from repro.net.packet import NodeId


def loss_neighborhood(network: Network, source: NodeId,
                      congested_parent: NodeId, congested_child: NodeId,
                      members: Sequence[NodeId]) -> List[NodeId]:
    """Members cut off when (parent, child) drops a packet from ``source``.

    The congested edge must be a tree edge of the source's shortest-path
    tree, oriented away from the source.
    """
    tree = network.source_tree(source)
    oriented = tree.on_tree_edge(congested_parent, congested_child)
    if oriented != (congested_parent, congested_child):
        raise ValueError(
            f"({congested_parent}, {congested_child}) is not a tree edge "
            f"directed away from {source}")
    below = tree.subtree(congested_child)
    return sorted(member for member in members if member in below)


def ttl_to_reach(network: Network, from_node: NodeId,
                 targets: Iterable[NodeId]) -> int:
    """Minimum initial TTL for a multicast from ``from_node`` to cover
    every node in ``targets`` (h in the paper's notation)."""
    tree = network.source_tree(from_node)
    required = 0
    for target in targets:
        if target == from_node:
            continue
        required = max(required, tree.ttl_required[target])
    return required


def ttl_to_escape(network: Network, from_node: NodeId,
                  neighborhood: Iterable[NodeId],
                  candidates: Iterable[NodeId]) -> Optional[int]:
    """Minimum TTL reaching some candidate outside the neighborhood
    (H in the paper's notation); None when no candidate exists."""
    tree = network.source_tree(from_node)
    inside = set(neighborhood)
    best: Optional[int] = None
    for candidate in candidates:
        if candidate in inside or candidate == from_node:
            continue
        needed = tree.ttl_required[candidate]
        if best is None or needed < best:
            best = needed
    return best


def reached_by(network: Network, from_node: NodeId, ttl: int,
               targets: Iterable[NodeId]) -> Set[NodeId]:
    """Nodes among ``targets`` covered by a TTL-``ttl`` multicast."""
    tree = network.source_tree(from_node)
    reached = set()
    for target in targets:
        if target == from_node or tree.ttl_required[target] <= ttl:
            reached.add(target)
    return reached


@dataclass(frozen=True)
class LocalRecoveryOutcome:
    """Result of one idealized scoped recovery (one row of Fig. 15)."""

    requester: NodeId
    replier: NodeId
    request_ttl: int
    loss_members: FrozenSet[NodeId]
    repair_reached: FrozenSet[NodeId]
    session_size: int

    @property
    def covered(self) -> bool:
        """Did the repair reach every member that shared the loss?"""
        return self.loss_members <= self.repair_reached

    @property
    def fraction_of_session(self) -> float:
        """Fraction of session members the repair reached (Fig. 15 top)."""
        return len(self.repair_reached) / self.session_size

    @property
    def repair_to_loss_ratio(self) -> float:
        """Repair-neighborhood size over loss-neighborhood size
        (Fig. 15 bottom)."""
        return len(self.repair_reached) / max(1, len(self.loss_members))


def _closest_requester(network: Network, congested_child: NodeId,
                       loss_members: Sequence[NodeId]) -> NodeId:
    tree = network.source_tree(congested_child)
    return min(loss_members, key=lambda member: (tree.dist[member], member))


def _closest_replier(network: Network, requester: NodeId, request_ttl: int,
                     good_members: Sequence[NodeId]) -> Optional[NodeId]:
    tree = network.source_tree(requester)
    reachable = [member for member in good_members
                 if tree.ttl_required[member] <= request_ttl]
    if not reachable:
        return None
    return min(reachable, key=lambda member: (tree.dist[member], member))


def ideal_scoped_recovery(network: Network, source: NodeId,
                          congested_parent: NodeId, congested_child: NodeId,
                          members: Sequence[NodeId],
                          mode: str = "two-step") -> LocalRecoveryOutcome:
    """The paper's idealized one-/two-step TTL recovery for one drop.

    The requester is the loss-neighborhood member closest to the failure.
    It scopes its request with ``max(h, H)``: enough TTL to cover every
    member sharing the loss *and* to reach at least one member that has
    the data. The repair then follows the one- or two-step rule.
    """
    if mode not in ("one-step", "two-step"):
        raise ValueError(f"unknown mode {mode!r}")
    loss_members = loss_neighborhood(network, source, congested_parent,
                                     congested_child, members)
    if not loss_members:
        raise ValueError("no member shares the loss; nothing to recover")
    good_members = [member for member in members
                    if member not in set(loss_members)]
    if not good_members:
        raise ValueError("every member lost the packet; local recovery "
                         "cannot find a replier")
    requester = _closest_requester(network, congested_child, loss_members)
    cover_ttl = ttl_to_reach(network, requester, loss_members)
    escape_ttl = ttl_to_escape(network, requester, loss_members,
                               good_members)
    assert escape_ttl is not None  # good_members is non-empty
    request_ttl = max(cover_ttl, escape_ttl)
    replier = _closest_replier(network, requester, request_ttl, good_members)
    assert replier is not None
    if mode == "one-step":
        # The repair's TTL is the request's plus the replier's hop count
        # back to the requester, optimistically assuming symmetry.
        hops_back = network.hops(replier, requester)
        reached = reached_by(network, replier, request_ttl + hops_back,
                             members)
    else:
        # Step 1: local repair with the request's TTL, naming the
        # requester. Step 2: the requester re-multicasts with its original
        # TTL, so the union covers everyone who saw the request.
        step_one = reached_by(network, replier, request_ttl, members)
        step_two = reached_by(network, requester, request_ttl, members)
        reached = step_one | step_two
    reached.discard(requester)
    reached.add(requester)  # the requester certainly has the data now
    return LocalRecoveryOutcome(
        requester=requester, replier=replier, request_ttl=request_ttl,
        loss_members=frozenset(loss_members),
        repair_reached=frozenset(reached),
        session_size=len(members))
