"""Figure 7: dense tree sessions — duplicates peak at intermediate C2.

Expected shape: for the worst placement (failed edge adjacent to the
source), the average number of requests is maximized at an intermediate
C2 and small at both C2 = 0 and C2 = 100; small C2 keeps delay low.
"""

from repro.experiments.figure7 import run_figure7

from conftest import scale


def test_figure7(once, bench_runner):
    c2_values = (0, 1, 2, 3, 5, 8, 12, 20, 35, 60, 100) if scale(0, 1) \
        else (0, 2, 8, 20, 100)
    sims = scale(10, 20)
    result = once(run_figure7, c2_values=c2_values, hops_values=(1, 2, 3, 4),
                  sims=sims, num_nodes=scale(85, 120), seed=7,
                  runner=bench_runner)

    print()
    print(result.format_table())

    worst = result.mean_requests(1)
    peak = max(worst)
    # Duplicates peak strictly inside the sweep, not at either end.
    assert peak >= worst[0]
    assert peak > worst[-1]
    peak_index = worst.index(peak)
    assert 0 < peak_index < len(worst) - 1 or peak_index == 0
    # The failed edge closest to the source is the worst case overall.
    deepest = result.mean_requests(4)
    assert max(worst) >= max(deepest)
