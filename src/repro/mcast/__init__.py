"""IP multicast group model.

Implements the group-delivery model SRM assumes (Section II of the paper):
senders address a :class:`~repro.net.packet.GroupAddress` with no knowledge
of the membership; receivers join and leave groups individually. Forwarding
itself lives in :mod:`repro.net.network`; this package tracks membership.
"""

from repro.mcast.groups import GroupManager

__all__ = ["GroupManager"]
