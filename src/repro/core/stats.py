"""Turning traces into the paper's metrics (compatibility surface).

The implementation moved to :mod:`repro.metrics.events` when the
observability layer landed; this module re-exports it unchanged so every
historical ``from repro.core.stats import ...`` keeps working. New code
should import from :mod:`repro.metrics` directly.
"""

from __future__ import annotations

from repro.metrics.events import (
    LossEventReport,
    MemberTiming,
    analyze_loss_event,
    mean,
    percentile,
    percentile_sorted,
    quantiles,
)

__all__ = [
    "LossEventReport",
    "MemberTiming",
    "analyze_loss_event",
    "mean",
    "percentile",
    "percentile_sorted",
    "quantiles",
]
