"""Ablations of SRM's design choices (per DESIGN.md).

Each ablation switches off one mechanism and measures what breaks:

* request backoff x3 vs x2 in adaptive runs (the footnote of Section
  VII-A: factor 2 lets a lone requester's backed-off timer expire before
  the repair arrives, producing needless duplicate requests);
* the 3*d repair hold-down (without it, duplicate requests trigger a
  second wave of repairs);
* distance-dependent timers (C1 = 0 removes deterministic suppression on
  a chain, where it is the whole story).
"""

from repro.core.config import SrmConfig
from repro.experiments.common import Scenario, run_rounds
from repro.experiments.figure6 import chain_scenario
from repro.topology.star import star

from conftest import scale


def mean_over_rounds(scenario, config, rounds, seed, metric):
    outcomes = run_rounds(scenario, config=config, rounds=rounds, seed=seed)
    return sum(getattr(o, metric) for o in outcomes) / len(outcomes)


def test_ablation_backoff_factor(once):
    """Backoff x3 produces fewer re-requests than x2 on a lone-loss
    chain scenario where the repair latency races the backoff."""
    rounds = scale(20, 40)
    scenario = chain_scenario(1, scale(50, 100))

    def experiment():
        slow = mean_over_rounds(
            scenario, SrmConfig(c1=2.0, c2=0.5, request_backoff=2.0),
            rounds, 21, "requests")
        fast = mean_over_rounds(
            scenario, SrmConfig(c1=2.0, c2=0.5, request_backoff=3.0),
            rounds, 21, "requests")
        return slow, fast

    with_x2, with_x3 = once(experiment)
    print()
    print(f"mean requests/loss: backoff x2 = {with_x2:.2f}, "
          f"x3 = {with_x3:.2f}")
    assert with_x3 <= with_x2


def test_ablation_repair_holddown(once):
    """Without the 3*d hold-down, each duplicate request in a star can
    trigger another wave of repairs."""
    group_size = scale(30, 60)
    rounds = scale(15, 30)
    scenario = Scenario(spec=star(group_size),
                        members=list(range(1, group_size + 1)),
                        source=1, drop_edge=(1, 0))

    def experiment():
        # Small C2 -> many duplicate requests; the hold-down is what
        # keeps them from multiplying the repairs.
        with_holddown = mean_over_rounds(
            scenario, SrmConfig(c1=0.0, c2=1.0, holddown_factor=3.0),
            rounds, 31, "repairs")
        without = mean_over_rounds(
            scenario, SrmConfig(c1=0.0, c2=1.0, holddown_factor=0.0),
            rounds, 31, "repairs")
        return with_holddown, without

    with_holddown, without = once(experiment)
    print()
    print(f"mean repairs/loss: holddown on = {with_holddown:.2f}, "
          f"off = {without:.2f}")
    assert without > 2 * with_holddown


def test_ablation_distance_dependent_timers(once):
    """Setting C1 = 0 removes the distance term that gives chains their
    deterministic suppression; duplicate requests appear."""
    rounds = scale(15, 30)
    scenario = chain_scenario(5, scale(40, 100))

    def experiment():
        with_distance = mean_over_rounds(
            scenario, SrmConfig(c1=1.0, c2=0.5, d1=1.0, d2=0.5),
            rounds, 41, "requests")
        without = mean_over_rounds(
            scenario, SrmConfig(c1=0.0, c2=1.5, d1=1.0, d2=0.5),
            rounds, 41, "requests")
        return with_distance, without

    with_distance, without = once(experiment)
    print()
    print(f"mean requests/loss: distance timers = {with_distance:.2f}, "
          f"pure randomization = {without:.2f}")
    assert without > with_distance


def test_ablation_ignore_backoff_heuristic(once):
    """Without footnote 1's window, every duplicate request re-backs-off
    the timer; requesters drift far into the future, delaying any
    retransmission round and inflating recovery delay variance."""
    group_size = scale(30, 60)
    rounds = scale(15, 30)
    scenario = Scenario(spec=star(group_size),
                        members=list(range(1, group_size + 1)),
                        source=1, drop_edge=(1, 0))

    def experiment():
        base = SrmConfig(c1=0.0, c2=1.0)
        on = run_rounds(scenario, config=base, rounds=rounds, seed=51)
        off = run_rounds(scenario,
                         config=base.copy(ignore_backoff_enabled=False),
                         rounds=rounds, seed=51)
        mean_delay = lambda outcomes: sum(
            o.last_member_ratio for o in outcomes) / len(outcomes)
        return mean_delay(on), mean_delay(off)

    delay_on, delay_off = once(experiment)
    print()
    print(f"mean last-member delay/RTT: ignore-backoff on = "
          f"{delay_on:.2f}, off = {delay_off:.2f}")
    # Both recover; the heuristic never makes things worse here.
    assert delay_on <= delay_off * 1.5
