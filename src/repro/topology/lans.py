"""Router backbones with attached LANs (paper Section V-B).

The paper mentions robustness runs on "topologies where each of the nodes
in the underlying network is a router with an adjacent Ethernet with 5
workstations". We model each Ethernet as a hub vertex attached to its
router, with the workstations hanging off the hub; all three hop types
(router-router, router-hub, hub-workstation) default to delay 1, and the
hub contributes the shared-wire property that every workstation on a LAN
is equidistant from the rest of the network.
"""

from __future__ import annotations

from typing import List

from repro.topology.btree import balanced_tree
from repro.topology.spec import TopologySpec


def routers_with_lans(num_routers: int, workstations_per_lan: int = 5,
                      backbone_degree: int = 4) -> TopologySpec:
    """A balanced router tree where each router hosts a small Ethernet.

    Node numbering: routers are 0..num_routers-1 (a balanced tree of the
    given interior degree); then for each router r, a hub node followed by
    its workstations.
    """
    if workstations_per_lan < 1:
        raise ValueError("each LAN needs at least one workstation")
    backbone = balanced_tree(num_routers, degree=backbone_degree)
    edges = list(backbone.edges)
    next_id = num_routers
    workstations: List[int] = []
    hubs: List[int] = []
    for router in range(num_routers):
        hub = next_id
        next_id += 1
        hubs.append(hub)
        edges.append((router, hub))
        for _ in range(workstations_per_lan):
            station = next_id
            next_id += 1
            workstations.append(station)
            edges.append((hub, station))
    spec = TopologySpec(
        name=(f"lans-{num_routers}r-{workstations_per_lan}w"),
        num_nodes=next_id, edges=edges)
    spec.metadata["routers"] = list(range(num_routers))
    spec.metadata["hubs"] = hubs
    spec.metadata["workstations"] = workstations
    return spec
