"""Tests for hierarchical session messages (Section IX-A)."""

import pytest

from repro.core.config import SrmConfig
from repro.core.scalable_session import SessionHierarchy, \
    session_load_model
from repro.topology.btree import balanced_tree

from conftest import build_srm_session


def hierarchy_session():
    """A 21-node degree-4 tree; all nodes are members; two subtrees are
    local areas (node sets chosen to be path-closed)."""
    spec = balanced_tree(21, 4)
    config = SrmConfig(session_enabled=True, session_min_interval=10.0,
                       distance_oracle=False)
    network, agents, group = build_srm_session(spec, range(21),
                                               config=config)
    # Subtrees rooted at nodes 1 and 2 (children 5-8 / 9-11 etc.).
    tree = network.source_tree(0)
    area_a = sorted(tree.subtree(1))
    area_b = sorted(tree.subtree(2))
    areas = {"a": area_a, "b": area_b}
    hierarchy = SessionHierarchy(network, agents, areas)
    return network, agents, hierarchy, areas


def test_representatives_elected_lowest_id():
    network, agents, hierarchy, areas = hierarchy_session()
    assert hierarchy.representatives["a"] == min(areas["a"])
    assert hierarchy.representatives["b"] == min(areas["b"])
    assert hierarchy.representative_of(areas["a"][1]) == min(areas["a"])
    assert hierarchy.area_of(areas["b"][0]) == "b"
    assert hierarchy.area_of(0) is None


def test_explicit_representative():
    spec = balanced_tree(21, 4)
    config = SrmConfig(session_enabled=True, distance_oracle=False)
    network, agents, _ = build_srm_session(spec, range(21), config=config)
    tree = network.source_tree(0)
    area = sorted(tree.subtree(1))
    rep = area[-1]
    hierarchy = SessionHierarchy(network, agents, {"a": area},
                                 representatives={"a": rep})
    assert hierarchy.representatives["a"] == rep


def test_invalid_configurations_rejected():
    spec = balanced_tree(21, 4)
    config = SrmConfig(session_enabled=True, distance_oracle=False)
    network, agents, _ = build_srm_session(spec, range(21), config=config)
    tree = network.source_tree(0)
    area = sorted(tree.subtree(1))
    with pytest.raises(ValueError):  # overlapping areas
        SessionHierarchy(network, agents, {"a": area, "b": area})
    with pytest.raises(ValueError):  # rep outside the area
        SessionHierarchy(network, agents, {"a": area},
                         representatives={"a": 0})
    with pytest.raises(ValueError):  # area without members
        SessionHierarchy(network, {0: agents[0]},
                         {"a": [node for node in area]})


def test_scoped_members_stay_local():
    network, agents, hierarchy, areas = hierarchy_session()
    network.run(until=200.0)
    rep_a = hierarchy.representatives["a"]
    scoped_member = next(node for node in areas["a"]
                         if node != rep_a)
    # A node outside area "a" never heard the scoped member...
    outside = agents[0].session if False else None
    for node, agent in agents.items():
        heard = agent.session.last_heard
        if node in areas["a"]:
            continue
        assert scoped_member not in heard, node
    # ...but did hear the representative.
    assert rep_a in agents[0].session.last_heard


def test_representatives_reach_everyone():
    network, agents, hierarchy, areas = hierarchy_session()
    network.run(until=200.0)
    reps = set(hierarchy.representatives.values())
    global_nodes = set(hierarchy.global_senders())
    assert reps <= global_nodes
    for node, agent in agents.items():
        for rep in reps:
            if rep != node:
                assert rep in agent.session.last_heard


def test_in_area_members_hear_each_other():
    network, agents, hierarchy, areas = hierarchy_session()
    network.run(until=200.0)
    members = areas["a"]
    for node in members:
        for peer in members:
            if node != peer:
                assert peer in agents[node].session.last_heard


def test_dissolve_restores_flat_reporting():
    network, agents, hierarchy, areas = hierarchy_session()
    hierarchy.dissolve()
    network.run(until=200.0)
    # Everyone hears everyone again.
    for node, agent in agents.items():
        assert len(agent.session.last_heard) == 20


def test_message_load_model():
    flat_only = session_load_model(100, [])
    assert flat_only["flat"] == flat_only["hierarchical"]
    split = session_load_model(100, [50, 50])
    # 2 reps reach 99 each; 2*49 members reach 49 each.
    assert split["hierarchical"] == 2 * 99 + 2 * 49 * 49
    assert split["reduction"] > 1.9
    with pytest.raises(ValueError):
        session_load_model(10, [8, 8])


def test_hierarchy_reduces_measured_receptions():
    """Count actual session-message deliveries, flat vs hierarchical."""
    def receptions(with_hierarchy):
        spec = balanced_tree(21, 4)
        config = SrmConfig(session_enabled=True,
                           session_min_interval=10.0,
                           distance_oracle=False)
        network, agents, _ = build_srm_session(spec, range(21),
                                               config=config)
        if with_hierarchy:
            tree = network.source_tree(0)
            SessionHierarchy(network, agents,
                             {"a": sorted(tree.subtree(1)),
                              "b": sorted(tree.subtree(2)),
                              "c": sorted(tree.subtree(3)),
                              "d": sorted(tree.subtree(4))})
        count = [0]
        original_deliver = network._deliver

        def counting_deliver(node_id, packet):
            if packet.kind == "srm-session":
                count[0] += 1
            original_deliver(node_id, packet)

        network._deliver = counting_deliver
        network.run(until=300.0)
        return count[0]

    flat = receptions(False)
    hierarchical = receptions(True)
    assert hierarchical < 0.6 * flat
