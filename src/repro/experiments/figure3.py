"""Figure 3: random trees, dense sessions, random congested link.

"Random trees with a random congested link and a single packet loss,
where all nodes are members of the multicast session." Three panels
against session size: (a) number of requests, (b) number of repairs,
(c) loss recovery delay of the last member to receive the repair, in
units of that member's RTT to the original source.

Expected shape: medians of exactly one request and one repair, and a
last-member delay ratio mostly below 2 — competitive with TCP-style
unicast recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runner import ExperimentRunner

from repro.core.config import SrmConfig
from repro.experiments.common import (
    ExperimentSpec,
    SeriesPoint,
    choose_scenario,
    format_quartile_table,
    run_experiment,
)
from repro.metrics.bundle import RunMetrics
from repro.sim.rng import RandomSource
from repro.topology.random_tree import random_labeled_tree

DEFAULT_SIZES = (10, 20, 40, 60, 80, 100)


@dataclass
class Figure3Result:
    points: List[SeriesPoint]
    sims: int
    metrics: Optional[RunMetrics] = None

    def format_table(self) -> str:
        sections = [
            format_quartile_table(self.points, "requests",
                                  "session", "Figure 3a: number of requests"),
            format_quartile_table(self.points, "repairs",
                                  "session", "Figure 3b: number of repairs"),
            format_quartile_table(self.points, "delay_ratio", "session",
                                  "Figure 3c: last-member recovery delay "
                                  "(units of its RTT to the source)"),
        ]
        return "\n\n".join(sections)


def run_figure3(sizes: Sequence[int] = DEFAULT_SIZES,
                sims: int = 20, seed: int = 3,
                config: Optional[SrmConfig] = None,
                runner: Optional["ExperimentRunner"] = None) -> Figure3Result:
    """Twenty sims per session size; a fresh random tree per sim.

    Scenario generation (topology draws, membership, congested link)
    stays serial in this process — forking the master RNG is order
    dependent — while the independent specs execute on the runner.
    """
    from repro.runner import ExperimentRunner

    master = RandomSource(seed)
    base_config = config if config is not None else SrmConfig()
    runner = runner if runner is not None else ExperimentRunner()
    sweep = []  # (size, spec), in sweep order
    for size in sizes:
        for sim_index in range(sims):
            rng = master.fork(f"fig3-{size}-{sim_index}")
            spec = random_labeled_tree(size, rng)
            scenario = choose_scenario(spec, session_size=size, rng=rng)
            sweep.append((size, ExperimentSpec(
                scenario=scenario, config=base_config,
                seed=hash((seed, size, sim_index)) & 0xFFFF,
                experiment="figure3")))
    results = runner.map("figure3", run_experiment,
                         [dict(spec=spec) for _, spec in sweep])
    points = {size: SeriesPoint(x=size) for size in sizes}
    for (size, _), result in zip(sweep, results):
        outcome = result.outcome
        point = points[size]
        point.add("requests", outcome.requests)
        point.add("repairs", outcome.repairs)
        point.add("delay_ratio", outcome.last_member_ratio)
    metrics = RunMetrics.merged((result.metrics for result in results),
                                experiment="figure3")
    return Figure3Result(points=[points[size] for size in sizes],
                         sims=sims, metrics=metrics)


def main() -> None:  # pragma: no cover - CLI entry
    print(run_figure3().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
