"""SRM: the paper's primary contribution.

The framework in one sentence: every member of an IP multicast group is
individually responsible for detecting its own losses and requesting
retransmission by persistent name; requests and repairs are themselves
multicast, with random timers — set as a function of distance — used to
suppress duplicates (Section III of the paper).

Public surface:

* :class:`SrmAgent` — the protocol endpoint to attach to a network node.
* :class:`SrmConfig` — every timer / adaptation / session knob.
* :class:`AduName`, :class:`PageId` — persistent application-data-unit names.
* :class:`AdaptiveTimers` — the Section VII-A adaptive parameter controller.
* :mod:`repro.core.stats` — turn traces into the paper's metrics.
"""

from repro.core.names import AduName, PageId
from repro.core.config import AdaptiveBounds, SrmConfig, TimerParams
from repro.core.messages import (
    DataPayload,
    RepairPayload,
    RequestPayload,
    SessionPayload,
)
from repro.core.state import DataStore, ReceptionState
from repro.core.adaptive import AdaptiveTimers
from repro.core.session import (
    DistanceEstimator,
    OracleDistance,
    SessionDistance,
)
from repro.core.agent import SrmAgent
from repro.core.stats import LossEventReport, analyze_loss_event
from repro.core.transmit import TokenBucket, TransmitQueue
from repro.core.fec import FecCodec
from repro.core.recovery_groups import RecoveryGroup
from repro.core.scalable_session import SessionHierarchy
from repro.core.layered import LayeredReceiver, LayeredSource, make_layers
from repro.core.local import LocalRecoveryOutcome, ideal_scoped_recovery

__all__ = [
    "TokenBucket",
    "TransmitQueue",
    "FecCodec",
    "RecoveryGroup",
    "SessionHierarchy",
    "LayeredSource",
    "LayeredReceiver",
    "make_layers",
    "LocalRecoveryOutcome",
    "ideal_scoped_recovery",
    "AduName",
    "PageId",
    "SrmConfig",
    "TimerParams",
    "AdaptiveBounds",
    "DataPayload",
    "RequestPayload",
    "RepairPayload",
    "SessionPayload",
    "DataStore",
    "ReceptionState",
    "AdaptiveTimers",
    "DistanceEstimator",
    "OracleDistance",
    "SessionDistance",
    "SrmAgent",
    "LossEventReport",
    "analyze_loss_event",
]
