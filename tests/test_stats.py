"""Unit tests for trace analysis and statistics."""

import pytest

from repro.core.names import AduName, DEFAULT_PAGE
from repro.core.stats import (
    LossEventReport,
    MemberTiming,
    analyze_loss_event,
    mean,
    quantiles,
)
from repro.sim.trace import Trace

NAME = AduName(1, DEFAULT_PAGE, 1)
OTHER = AduName(1, DEFAULT_PAGE, 2)


def synthetic_trace():
    trace = Trace()
    trace.record(1.0, 5, "loss_detected", name=NAME)
    trace.record(1.5, 6, "loss_detected", name=NAME)
    trace.record(2.0, 5, "send_request", name=NAME, round=1)
    trace.record(2.1, 6, "send_request", name=NAME, round=1)
    trace.record(2.0, 5, "first_request_event", name=NAME, delay=1.0,
                 rtt=4.0, ratio=0.25, via="sent")
    trace.record(3.0, 4, "send_repair", name=NAME, two_step=False)
    trace.record(3.5, 9, "send_repair_second_step", name=NAME, ttl=4)
    trace.record(4.0, 5, "data_recovered", name=NAME, delay=3.0, rtt=4.0,
                 ratio=0.75, via="repair")
    trace.record(5.0, 6, "data_recovered", name=NAME, delay=3.5, rtt=2.0,
                 ratio=1.75, via="repair")
    # Noise about a different name must be ignored.
    trace.record(9.0, 7, "send_request", name=OTHER)
    trace.record(9.0, 7, "data_recovered", name=OTHER, delay=1, rtt=1,
                 ratio=1.0, via="repair")
    return trace


def test_analyze_counts_by_name():
    report = analyze_loss_event(synthetic_trace(), NAME)
    assert report.requests == 2
    assert report.repairs == 1
    assert report.second_step_repairs == 1
    assert report.losses_detected == 2
    assert report.duplicate_requests == 1
    assert report.duplicate_repairs == 0


def test_analyze_recoveries_and_last_member():
    report = analyze_loss_event(synthetic_trace(), NAME)
    assert set(report.recoveries) == {5, 6}
    assert report.recoveries[5].ratio == 0.25 * 3  # 0.75
    # Member 6 recovered last (t=5.0): its ratio is reported.
    assert report.last_member_recovery_ratio() == 1.75
    assert report.max_recovery_ratio() == 1.75
    assert report.mean_recovery_ratio() == pytest.approx((0.75 + 1.75) / 2)
    assert report.all_recovered


def test_analyze_request_waits():
    report = analyze_loss_event(synthetic_trace(), NAME)
    timing = report.request_wait_of(5)
    assert timing is not None
    assert timing.via == "sent"
    assert report.request_wait_of(42) is None


def test_empty_report_properties():
    report = LossEventReport(name=NAME)
    assert report.duplicate_requests == 0
    assert report.duplicate_repairs == 0
    assert report.last_member_recovery_ratio() is None
    assert report.max_recovery_ratio() is None
    assert report.mean_recovery_ratio() is None
    assert not report.all_recovered


def test_quantiles_median_and_quartiles():
    q1, med, q3 = quantiles([1.0, 2.0, 3.0, 4.0, 5.0])
    assert med == 3.0
    assert q1 == 2.0
    assert q3 == 4.0


def test_quantiles_interpolation():
    q1, med, q3 = quantiles([0.0, 10.0])
    assert med == 5.0
    assert q1 == 2.5
    assert q3 == 7.5


def test_quantiles_single_value():
    assert quantiles([7.0]) == (7.0, 7.0, 7.0)


def test_quantiles_unsorted_input():
    _, med, _ = quantiles([9.0, 1.0, 5.0])
    assert med == 5.0


def test_quantiles_empty_raises():
    with pytest.raises(ValueError):
        quantiles([])


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        mean([])
