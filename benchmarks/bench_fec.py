"""Parity FEC vs. plain SRM under random loss.

The Section VII-B citation (Nonnenmacher/Biersack/Towsley) made
measurable: with one XOR parity packet per k data packets, isolated
losses are reconstructed locally and the request/repair machinery stays
quiet; without FEC every loss costs a recovery exchange.
"""

from repro.core.config import SrmConfig
from repro.core.names import AduName, DEFAULT_PAGE
from repro.net.link import BernoulliDropFilter
from repro.sim.rng import RandomSource
from repro.topology.btree import balanced_tree

from conftest import scale


def run_lossy_transfer(fec_block, packets, loss_rate, seed):
    """Send ``packets`` ADUs through a tree with a Bernoulli-lossy edge;
    count recovery traffic."""
    from repro.core.agent import SrmAgent

    spec = balanced_tree(scale(20, 40), 4)
    network = spec.build()
    network.trace.enabled = True
    group = network.groups.allocate("session")
    master = RandomSource(seed)
    config = SrmConfig(fec_block=fec_block)
    agents = {}
    for node in range(spec.num_nodes):
        agent = SrmAgent(config.copy(), master.fork(f"m{node}"))
        network.attach(node, agent)
        agent.join_group(group)
        agents[node] = agent
    network.add_drop_filter(0, 1, BernoulliDropFilter(
        loss_rate, master.fork("loss"),
        predicate=lambda p: p.kind == "srm-data"))

    def burst():
        for index in range(packets):
            network.scheduler.schedule(
                index * 2.0, lambda i=index: agents[0].send_data(f"p{i}"))
        # A reliable beacon reveals any tail loss.
        network.scheduler.schedule(
            packets * 2.0 + 50.0, lambda: agents[0].send_data("beacon"))

    network.scheduler.schedule(0.0, burst)
    network.run(max_events=5_000_000)

    complete = all(
        agents[node].store.have(AduName(0, DEFAULT_PAGE, seq))
        for node in range(spec.num_nodes)
        for seq in range(1, packets + 1))
    return {
        "requests": network.trace.count("send_request"),
        "repairs": network.trace.count("send_repair"),
        "reconstructed": network.trace.count("fec_reconstructed"),
        "parity": network.trace.count("send_fec"),
        "complete": complete,
    }


def test_fec_quiets_recovery_traffic(once):
    packets = scale(24, 60)
    loss = 0.08

    def experiment():
        plain = run_lossy_transfer(None, packets, loss, seed=42)
        fec = run_lossy_transfer(4, packets, loss, seed=42)
        return plain, fec

    plain, fec = once(experiment)
    print()
    print(f"{'':>8} {'requests':>9} {'repairs':>8} {'parity':>7} "
          f"{'reconstructed':>14} {'complete':>9}")
    print(f"{'plain':>8} {plain['requests']:>9} {plain['repairs']:>8} "
          f"{plain['parity']:>7} {plain['reconstructed']:>14} "
          f"{str(plain['complete']):>9}")
    print(f"{'fec k=4':>8} {fec['requests']:>9} {fec['repairs']:>8} "
          f"{fec['parity']:>7} {fec['reconstructed']:>14} "
          f"{str(fec['complete']):>9}")

    assert plain["complete"] and fec["complete"]
    assert plain["requests"] > 0
    assert fec["reconstructed"] > 0
    # FEC absorbs most isolated losses: far less recovery traffic.
    assert fec["requests"] + fec["repairs"] < \
        (plain["requests"] + plain["repairs"]) * 0.7
