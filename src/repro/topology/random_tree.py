"""Uniform random labeled trees (paper Section V-A).

The paper constructs random labeled trees "according to the labeling
algorithm in [Palmer, Graphical Evolution, p. 99]" — i.e. uniformly over
Cayley's n^(n-2) labeled trees. We generate them by drawing a uniform
Prüfer sequence and decoding it, which yields exactly that distribution.
These trees have unbounded degree, but for large n a vertex has degree
at most four with probability ~0.98, as the paper notes.
"""

from __future__ import annotations

from repro.sim.rng import RandomSource
from repro.topology.spec import TopologySpec


def prufer_decode(sequence: list[int], num_nodes: int) -> list[tuple[int, int]]:
    """Decode a Prüfer sequence into the edge list of a labeled tree.

    ``sequence`` has length ``num_nodes - 2`` with entries in
    [0, num_nodes).
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if len(sequence) != num_nodes - 2:
        raise ValueError(
            f"sequence length {len(sequence)} != {num_nodes - 2}")
    degree = [1] * num_nodes
    for label in sequence:
        degree[label] += 1
    edges = []
    # Min-heap of current leaves; lazy approach with a pointer is O(n log n)
    # via repeated scans -- use heapq for clarity and speed.
    import heapq

    leaves = [node for node in range(num_nodes) if degree[node] == 1]
    heapq.heapify(leaves)
    for label in sequence:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, label))
        degree[label] -= 1
        if degree[label] == 1:
            heapq.heappush(leaves, label)
    last_two = [heapq.heappop(leaves), heapq.heappop(leaves)]
    edges.append((last_two[0], last_two[1]))
    return edges


def random_labeled_tree(num_nodes: int, rng: RandomSource) -> TopologySpec:
    """A tree drawn uniformly from the n^(n-2) labeled trees on n nodes."""
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if num_nodes == 2:
        edges = [(0, 1)]
    else:
        sequence = [rng.randint(0, num_nodes - 1)
                    for _ in range(num_nodes - 2)]
        edges = prufer_decode(sequence, num_nodes)
    return TopologySpec(name=f"random-tree-{num_nodes}",
                        num_nodes=num_nodes, edges=edges)
