"""repro.lint: rule firing, suppressions, baseline ratchet, CLI codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import LintEngine, lint_paths, load_baseline, rule_codes
from repro.lint.baseline import Baseline, save_baseline
from repro.lint.cli import main as lint_main
from repro.lint.config import in_domain, module_key
from repro.lint.engine import iter_python_files

FIXTURES = Path(__file__).parent / "lint_fixtures"
VIOLATIONS_TREE = FIXTURES / "violations"
CLEAN_TREE = FIXTURES / "clean"
SUPPRESSED_TREE = FIXTURES / "suppressed"

#: rule code -> (fixture file, expected line of the first hit)
EXPECTED_HITS = {
    "SRM001": ("src/repro/core/srm001.py", 8),
    "SRM002": ("src/repro/core/srm002.py", 7),
    "SRM003": ("src/repro/core/srm003.py", 4),
    "SRM004": ("src/repro/core/srm004.py", 5),
    "SRM005": ("src/repro/net/packet.py", 4),
    "SRM006": ("src/repro/net/network.py", 10),
    "SRM007": ("src/repro/core/srm007.py", 8),
    "SRM008": ("src/repro/core/srm008.py", 14),
}


# ----------------------------------------------------------------------
# Rule firing.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("code", sorted(EXPECTED_HITS))
def test_rule_fires_at_expected_line(code):
    relpath, line = EXPECTED_HITS[code]
    report = lint_paths([VIOLATIONS_TREE / relpath])
    hits = [v for v in report.violations if v.code == code]
    assert hits, f"{code} did not fire on {relpath}"
    assert hits[0].line == line
    assert code in hits[0].format()


def test_every_rule_code_fires_on_the_violations_tree():
    report = lint_paths([VIOLATIONS_TREE])
    fired = {v.code for v in report.violations}
    assert fired == set(rule_codes())


def test_clean_tree_is_clean():
    report = lint_paths([CLEAN_TREE])
    assert report.ok, report.format()
    assert report.files_checked >= 3


def test_repo_is_clean():
    repo_root = Path(__file__).parent.parent
    report = lint_paths([repo_root / "src", repo_root / "tests"],
                        baseline=load_baseline(
                            repo_root / "lint-baseline.json"))
    assert report.ok, report.format()


def test_srm001_aliased_numpy_and_from_import():
    engine = LintEngine()
    src = ("import numpy as np\n"
           "from random import choice\n"
           "def f(xs):\n"
           "    return choice(xs), np.random.rand()\n")
    codes = [v.code for v in engine.check_source("src/repro/core/x.py", src)]
    assert codes.count("SRM001") == 2


def test_srm002_sorted_iteration_is_clean():
    engine = LintEngine()
    src = ("def f(xs):\n"
           "    for x in sorted(set(xs)):\n"
           "        print(x)\n"
           "    return sum(set(xs)), len(set(xs))\n")
    assert engine.check_source("src/repro/core/x.py", src) == []


def test_srm004_none_and_sentinel_comparisons_are_clean():
    engine = LintEngine()
    src = ("def f(timer):\n"
           "    return timer.expiry == None or timer.expiry != -1\n")
    assert engine.check_source("src/repro/core/x.py", src) == []


def test_domain_rules_skip_non_domain_files():
    engine = LintEngine()
    src = "import random\nx = random.random()\n"
    # Same source: flagged inside repro/**, ignored outside it.
    assert engine.check_source("src/repro/core/x.py", src)
    assert engine.check_source("tools/script.py", src) == []
    # ... but generic hygiene still applies outside the domain.
    hygiene = "def f(x=[]):\n    return x\n"
    codes = [v.code for v in engine.check_source("tools/script.py", hygiene)]
    assert codes == ["SRM003"]


def test_rng_module_is_the_blessed_boundary():
    engine = LintEngine()
    src = "import random\nrng = random.Random(3)\n"
    assert engine.check_source("src/repro/sim/rng.py", src) == []


def test_live_clock_is_the_blessed_wall_clock_boundary():
    engine = LintEngine()
    src = "import time\nstamp = time.time()\n"
    # The one module of the live engine allowed to read real time...
    assert engine.check_source("src/repro/live/clock.py", src) == []
    # ... while the rest of repro.live stays under SRM001.
    codes = [v.code
             for v in engine.check_source("src/repro/live/session.py", src)]
    assert codes == ["SRM001"]


def test_module_key_matches_fixture_and_real_trees():
    assert module_key("src/repro/net/packet.py") == "repro/net/packet.py"
    assert module_key(
        "tests/lint_fixtures/violations/src/repro/net/packet.py"
    ) == "repro/net/packet.py"
    assert not in_domain("tests/test_lint.py")


def test_syntax_error_reports_srm000(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    report = lint_paths([bad])
    assert not report.ok
    assert report.parse_errors[0].code == "SRM000"


def test_fixture_dirs_are_excluded_from_walks_but_lintable_directly():
    walked = iter_python_files([FIXTURES.parent])  # tests/
    assert not any("lint_fixtures" in str(path) for path in walked)
    direct = iter_python_files([VIOLATIONS_TREE])
    assert len(direct) >= len(EXPECTED_HITS)


# ----------------------------------------------------------------------
# Suppressions.
# ----------------------------------------------------------------------


def test_line_and_file_suppressions_waive_violations():
    report = lint_paths([SUPPRESSED_TREE])
    assert report.ok, report.format()
    assert report.suppressed == 2


def test_suppression_must_name_the_right_code():
    engine = LintEngine()
    src = ("import time\n"
           "def f():\n"
           "    return time.time()  # lint: ignore[SRM999]\n")
    report_codes = [v.code
                    for v in engine.check_source("src/repro/core/x.py", src)]
    assert report_codes == ["SRM001"]  # wrong code: not waived


def test_file_suppression_only_near_top(tmp_path):
    tree = tmp_path / "src" / "repro" / "core"
    tree.mkdir(parents=True)
    body = "\n" * 20 + "# lint: ignore-file[SRM001]\nimport time\n" \
        + "t = time.time()\n"
    (tree / "late.py").write_text(body)
    report = lint_paths([tmp_path])
    assert [v.code for v in report.violations] == ["SRM001"]


# ----------------------------------------------------------------------
# Baseline ratchet.
# ----------------------------------------------------------------------


def _violating_tree(tmp_path: Path) -> Path:
    tree = tmp_path / "src" / "repro" / "core"
    tree.mkdir(parents=True)
    (tree / "old.py").write_text("import time\nt = time.time()\n")
    return tmp_path


def _baseline_for(tmp_path: Path, entries) -> Path:
    path = tmp_path / "lint-baseline.json"
    save_baseline(Baseline(entries), path)
    return path


def test_baseline_waives_exactly_its_count(tmp_path, monkeypatch):
    root = _violating_tree(tmp_path)
    monkeypatch.chdir(root)
    key = "src/repro/core/old.py"
    report = lint_paths(["src"],
                        baseline=Baseline({key: {"SRM001": 1}}))
    assert report.ok
    assert report.waived == 1
    # A second violation in the same file exceeds the waived count.
    (root / key).write_text(
        "import time\nt = time.time()\nu = time.time()\n")
    report = lint_paths(["src"],
                        baseline=Baseline({key: {"SRM001": 1}}))
    assert [v.code for v in report.violations] == ["SRM001"]
    assert report.waived == 1


def test_update_baseline_shrinks_and_never_grows(tmp_path, monkeypatch):
    root = _violating_tree(tmp_path)
    monkeypatch.chdir(root)
    key = "src/repro/core/old.py"
    baseline_path = _baseline_for(
        root, {key: {"SRM001": 2},
               "src/repro/core/gone.py": {"SRM003": 1}})
    # The file now has 1 violation (baseline says 2) and gone.py no
    # longer exists: both entries must shrink away.
    assert lint_main(["src", "--baseline", str(baseline_path),
                      "--update-baseline"]) == 0
    ratcheted = load_baseline(baseline_path)
    assert ratcheted.entries == {key: {"SRM001": 1}}


def test_update_baseline_refuses_new_debt(tmp_path, monkeypatch, capsys):
    root = _violating_tree(tmp_path)
    monkeypatch.chdir(root)
    baseline_path = _baseline_for(root, {})  # empty: violation is new
    assert lint_main(["src", "--baseline", str(baseline_path),
                      "--update-baseline"]) == 2
    assert "never absorbs new debt" in capsys.readouterr().err
    assert load_baseline(baseline_path).entries == {}  # untouched


def test_shrunk_baseline_cannot_add_entries():
    baseline = Baseline({"a.py": {"SRM001": 1}})
    observed = {"a.py": {"SRM001": 5}, "b.py": {"SRM003": 2}}
    shrunk = baseline.shrunk(observed)
    assert shrunk.entries == {"a.py": {"SRM001": 1}}
    assert baseline.would_grow(shrunk) == []


def test_update_baseline_pure_removal_works_from_any_cwd(tmp_path,
                                                         monkeypatch):
    # Regression: display paths used to be cwd-relative, so running
    # --update-baseline from outside the repo root produced keys that
    # never matched the baseline — a pure-removal update then looked
    # like "new debt" and exited 2. Paths now anchor to the baseline
    # file's directory, so the launch directory is irrelevant.
    root = _violating_tree(tmp_path)
    elsewhere = tmp_path / "elsewhere"
    elsewhere.mkdir()
    monkeypatch.chdir(elsewhere)
    key = "src/repro/core/old.py"
    baseline_path = _baseline_for(
        root, {key: {"SRM001": 2},
               "src/repro/core/gone.py": {"SRM003": 1}})
    assert lint_main([str(root / "src"), "--baseline", str(baseline_path),
                      "--update-baseline"]) == 0
    assert load_baseline(baseline_path).entries == {key: {"SRM001": 1}}


def test_stale_baseline_entries_are_reported(tmp_path, monkeypatch,
                                             capsys):
    root = _violating_tree(tmp_path)
    monkeypatch.chdir(root)
    key = "src/repro/core/old.py"
    baseline_path = _baseline_for(
        root, {key: {"SRM001": 1},
               "src/repro/core/gone.py": {"SRM003": 1}})
    # Dead debt alone is not a failure by default...
    assert lint_main(["src", "--baseline", str(baseline_path)]) == 0
    # ... but --fail-stale-baseline makes it one.
    assert lint_main(["src", "--baseline", str(baseline_path),
                      "--fail-stale-baseline"]) == 1
    err = capsys.readouterr().err
    assert "stale baseline entry" in err
    assert "src/repro/core/gone.py: SRM003" in err


def test_malformed_baseline_is_a_usage_error(tmp_path, monkeypatch):
    root = _violating_tree(tmp_path)
    monkeypatch.chdir(root)
    bad = root / "lint-baseline.json"
    bad.write_text("not json")
    assert lint_main(["src", "--baseline", str(bad)]) == 2


# ----------------------------------------------------------------------
# CLI.
# ----------------------------------------------------------------------


def test_cli_exit_codes():
    assert repro_main(["lint", str(CLEAN_TREE)]) == 0
    assert repro_main(["lint", str(VIOLATIONS_TREE)]) == 1


def test_cli_select_unknown_code_is_usage_error():
    assert lint_main([str(CLEAN_TREE), "--select", "SRM999"]) == 2


def test_cli_select_runs_only_named_rules():
    assert lint_main([str(VIOLATIONS_TREE), "--select", "SRM003"]) == 1
    assert lint_main([str(VIOLATIONS_TREE / "src/repro/core/srm001.py"),
                      "--select", "SRM003"]) == 0


def test_cli_list_rules(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in rule_codes():
        assert code in out


def test_cli_json_format_is_machine_readable(capsys):
    assert lint_main([str(VIOLATIONS_TREE / "src/repro/core/srm001.py"),
                      "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    codes = {row["code"] for row in payload["violations"]}
    assert "SRM001" in codes
    assert all({"path", "line", "col", "code", "message"}
               <= set(row) for row in payload["violations"])
    assert payload["stale_baseline"] == []


def test_cli_github_format_emits_error_annotations(capsys):
    assert lint_main([str(VIOLATIONS_TREE / "src/repro/core/srm003.py"),
                      "--no-baseline", "--format", "github"]) == 1
    out = capsys.readouterr().out
    annotations = [line for line in out.splitlines()
                   if line.startswith("::error ")]
    assert annotations
    assert ",title=SRM003::" in annotations[0]
    assert "file=" in annotations[0] and "line=" in annotations[0]
    # Clean runs still end with the human summary, no annotations.
    assert lint_main([str(CLEAN_TREE), "--no-baseline",
                      "--format", "github"]) == 0
    assert "::error" not in capsys.readouterr().out


def test_committed_baseline_file_is_valid():
    path = Path(__file__).parent.parent / "lint-baseline.json"
    baseline = load_baseline(path)
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    # The ratchet's goal state: the tree is clean, debt only shrinks.
    assert baseline.total() == 0
