"""Tests for the adaptive timer algorithm (Section VII-A)."""

import pytest

from repro.core.adaptive import AdaptiveTimers
from repro.core.config import AdaptiveBounds, SrmConfig
from repro.experiments.common import LossRecoverySimulation, Scenario
from repro.topology.btree import balanced_tree
from repro.topology.star import star


def controller(group_size=100, **config_overrides):
    config = SrmConfig(adaptive=True, **config_overrides)
    return AdaptiveTimers(config, group_size)


# ----------------------------------------------------------------------
# Controller unit tests
# ----------------------------------------------------------------------

def test_initial_parameters_match_fixed_settings():
    ctl = controller(group_size=1000)
    assert ctl.params.c1 == 2.0
    assert ctl.params.c2 == 2.0
    assert ctl.params.d1 == pytest.approx(3.0)
    assert ctl.params.d2 == pytest.approx(3.0)


def test_high_duplicates_widen_request_interval():
    ctl = controller()
    ctl.request_period_start()
    for _ in range(25):
        for _ in range(4):  # four duplicates per period
            ctl.record_duplicate_request(we_sent=False,
                                         requester_distance=0,
                                         our_distance=1)
        ctl.request_period_start()
    # ave_dup_req climbed above the target of 1; C2 grew by +0.5 steps.
    assert ctl.request.ave_dup > 1.0
    assert ctl.params.c2 > 2.0


def test_low_duplicates_high_delay_shrink_interval():
    ctl = controller()
    ctl.request_period_start()
    for _ in range(30):  # push the delay EWMA above the 1-RTT target
        ctl.record_request_sent()
        ctl.record_request_delay(5.0)
    before = ctl.params.c2
    ctl.request_period_start()
    assert ctl.request.ave_delay > 1.0
    assert ctl.params.c2 < before


def test_c2_decrease_requires_small_duplicates():
    ctl = controller()
    # Prime ave_dup to sit between 0.5 and 1 (no increase, no decrease).
    for _ in range(60):
        ctl.record_duplicate_request(we_sent=False, requester_distance=0,
                                     our_distance=1)
        ctl.request_period_start()
    ctl.record_request_delay(5.0)
    state = ctl.request
    assert state.ave_dup > 0.5
    c2 = ctl.params.c2
    ctl.request_period_start()
    assert ctl.params.c2 >= c2 - 1e-9 or state.ave_dup > 1.0


def test_parameters_respect_bounds():
    bounds = AdaptiveBounds(c1_min=0.5, c1_max=2.0, c2_min=1.0, c2_max=4.0)
    ctl = controller(adaptive_bounds=bounds)
    for _ in range(50):
        ctl.record_duplicate_request(we_sent=False, requester_distance=0,
                                     our_distance=1)
        ctl.record_duplicate_request(we_sent=False, requester_distance=0,
                                     our_distance=1)
        ctl.request_period_start()
    assert ctl.params.c2 == 4.0
    assert ctl.params.c1 == 2.0
    for _ in range(200):
        ctl.record_request_sent()
        ctl.record_request_delay(10.0)
        ctl.request_period_start()
    assert ctl.params.c1 >= 0.5
    assert ctl.params.c2 >= 1.0


def test_sending_request_lowers_c1():
    """Deterministic-suppression mechanism 1: reduce C1 after sending."""
    ctl = controller()
    before = ctl.params.c1
    ctl.record_request_sent()
    assert ctl.params.c1 == pytest.approx(before - 0.05)


def test_far_duplicate_lowers_c1_only_for_senders():
    """Mechanism 2: a member that sent the request and then hears a
    duplicate from a member >1.5x farther moves earlier."""
    ctl = controller()
    before = ctl.params.c1
    ctl.record_duplicate_request(we_sent=True, requester_distance=10.0,
                                 our_distance=2.0)
    assert ctl.params.c1 == pytest.approx(before - 0.05)
    # A non-sender does not react.
    ctl2 = controller()
    before2 = ctl2.params.c1
    ctl2.record_duplicate_request(we_sent=False, requester_distance=10.0,
                                  our_distance=2.0)
    assert ctl2.params.c1 == before2
    # A near duplicate does not trigger it either.
    ctl3 = controller()
    before3 = ctl3.params.c1
    ctl3.record_duplicate_request(we_sent=True, requester_distance=2.5,
                                  our_distance=2.0)
    assert ctl3.params.c1 == before3


def test_repair_side_mirrors_request_side():
    ctl = controller(group_size=1000)
    ctl.repair_period_start()
    for _ in range(25):
        for _ in range(4):
            ctl.record_duplicate_repair(we_sent=False, replier_distance=0,
                                        our_distance=1)
        ctl.repair_period_start()
    assert ctl.params.d2 > 3.0


def test_d1_capped_at_initial_value():
    """D1 may only shrink (habitual repliers) and drift back; inflating
    it would delay every repair and provoke re-requests."""
    ctl = controller(group_size=1000)
    for _ in range(50):
        ctl.record_duplicate_repair(we_sent=False, replier_distance=0,
                                    our_distance=1)
        ctl.repair_period_start()
    assert ctl.params.d1 <= 3.0 + 1e-9


def test_sending_repair_lowers_d1():
    ctl = controller(group_size=1000)
    before = ctl.params.d1
    ctl.record_repair_sent()
    assert ctl.params.d1 == pytest.approx(before - 0.05)


def test_ewma_weight_controls_smoothing():
    ctl = controller(ewma_weight=0.5)
    ctl.request_period_start()
    ctl.record_duplicate_request(we_sent=False, requester_distance=0,
                                 our_distance=1)
    ctl.record_duplicate_request(we_sent=False, requester_distance=0,
                                 our_distance=1)
    ctl.request_period_start()
    assert ctl.request.ave_dup == pytest.approx(1.0)  # 0.5 * 2


def test_first_period_does_not_fold_empty_sample():
    ctl = controller()
    ctl.request_period_start()  # nothing happened yet
    assert ctl.request.ave_dup == 0.0


# ----------------------------------------------------------------------
# Integration: duplicates actually fall over rounds
# ----------------------------------------------------------------------

def test_adaptive_reduces_star_request_implosion():
    """A star with many simultaneous detectors: fixed C2=2 gives a burst
    of duplicate requests every round; the adaptive algorithm widens C2
    until the burst collapses."""
    spec = star(40)
    members = list(range(1, 41))
    scenario = Scenario(spec=spec, members=members, source=1,
                        drop_edge=(1, 0))
    fixed = LossRecoverySimulation(scenario, config=SrmConfig(), seed=3)
    fixed_requests = [fixed.run_round().requests for _ in range(30)]
    adaptive = LossRecoverySimulation(scenario,
                                      config=SrmConfig(adaptive=True),
                                      seed=3)
    adaptive_requests = [adaptive.run_round().requests for _ in range(30)]
    assert sum(fixed_requests[-10:]) / 10 > 5
    assert sum(adaptive_requests[-10:]) / 10 < \
        sum(fixed_requests[-10:]) / 10 / 2


def test_adaptive_reduces_sparse_tree_repair_duplicates():
    spec = balanced_tree(200, 4)
    members = [0, 3, 17, 33, 64, 90, 120, 150, 180, 199]
    scenario = Scenario(spec=spec, members=members, source=0,
                        drop_edge=(48, 195))
    # Find a real drop edge on the source tree that cuts >= 1 member.
    from repro.experiments.common import candidate_drop_edges
    network = spec.build()
    edges = candidate_drop_edges(network, 0, members)
    scenario = Scenario(spec=spec, members=members, source=0,
                        drop_edge=edges[-1])
    fixed = LossRecoverySimulation(scenario, config=SrmConfig(), seed=5)
    fixed_repairs = [fixed.run_round().repairs for _ in range(40)]
    adaptive = LossRecoverySimulation(scenario,
                                      config=SrmConfig(adaptive=True),
                                      seed=5)
    adaptive_repairs = [adaptive.run_round().repairs for _ in range(40)]
    assert sum(adaptive_repairs[-10:]) <= sum(fixed_repairs[-10:])


def test_adaptive_recovery_still_complete():
    spec = star(20)
    scenario = Scenario(spec=spec, members=list(range(1, 21)), source=1,
                        drop_edge=(1, 0))
    simulation = LossRecoverySimulation(scenario,
                                        config=SrmConfig(adaptive=True),
                                        seed=1)
    for _ in range(20):
        outcome = simulation.run_round()
        assert outcome.recovered
