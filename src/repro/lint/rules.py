"""Rule base class, registry, and the per-file analysis context."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint import config
from repro.lint.violations import Violation


class FileContext:
    """Everything a rule may consult about the file under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module_key = config.module_key(path)
        self.in_domain = config.in_domain(path)
        self._parents: dict[int, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing nodes, innermost first."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                return ancestor
        return None


class Rule:
    """One lint rule: a stable code, a short name, and a ``check``.

    ``domain_only`` rules run only on simulation-domain files
    (``repro/**`` — see :func:`repro.lint.config.in_domain`); hygiene
    rules run on every file handed to the engine.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    domain_only: bool = True

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_domain or not self.domain_only

    def check(self, ctx: FileContext) -> list[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(path=ctx.path,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0) + 1,
                         code=self.code, message=message)


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, in code order. Imports rule modules lazily."""
    _load_rule_modules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_codes() -> list[str]:
    _load_rule_modules()
    return sorted(_REGISTRY)


_loaded = False


def _load_rule_modules() -> None:
    # Importing registers via the @register decorator; idempotent.
    global _loaded
    if _loaded:
        return
    from repro.lint import (  # noqa: F401  (imported for side effects)
        rules_determinism, rules_hotpath, rules_hygiene, rules_races,
        rules_runner)
    _loaded = True


class _AllRules:
    """Lazy sequence view over the registry (stable import-time object)."""

    def __iter__(self) -> Iterator[Rule]:
        return iter(all_rules())

    def __len__(self) -> int:
        return len(all_rules())


ALL_RULES = _AllRules()
