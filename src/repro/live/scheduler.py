"""Real-time timer scheduling over asyncio.

:class:`LiveScheduler` implements the structural
:class:`repro.sim.timers.TimerScheduler` interface — ``now`` plus
relative one-shot ``schedule`` — on top of ``loop.call_later``, so
:class:`repro.sim.timers.Timer` and all the SRM timer machinery run
unchanged in real time.

**The frozen clock.** ``now`` does not track the wall clock
continuously: it advances only at dispatch points (a timer firing, a
datagram arriving) and stays frozen while a callback runs. Every trace
record emitted from one callback therefore carries the same timestamp,
which preserves the timestamp-equality invariants the protocol oracles
rely on (e.g. a ``repair_cancelled`` justified by a ``recv_repair`` at
the *same* time). The sim's scheduler has this property by construction;
the live scheduler keeps it deliberately.

Events may be scheduled before the event loop exists (agents arm session
timers at join time): they are parked and armed when :meth:`start` runs,
and re-armed on a later start if the loop was stopped mid-flight.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional, Tuple

from repro.live.clock import WallClock


class LiveEvent:
    """A cancellable handle for one scheduled callback."""

    __slots__ = ("seq", "expiry", "callback", "args", "cancelled", "fired",
                 "handle", "_scheduler")

    def __init__(self, scheduler: "LiveScheduler", seq: int, expiry: float,
                 callback: Callable[..., Any],
                 args: Tuple[Any, ...]) -> None:
        self._scheduler = scheduler
        self.seq = seq
        self.expiry = expiry
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.handle: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        """Prevent the callback from running. Safe to call repeatedly."""
        self.cancelled = True
        if self.handle is not None:
            self.handle.cancel()
            self.handle = None
        self._scheduler._forget(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("cancelled" if self.cancelled
                 else "fired" if self.fired else "pending")
        return f"<LiveEvent #{self.seq} {state} expiry={self.expiry:.4f}>"


class LiveScheduler:
    """``TimerScheduler`` over an asyncio event loop and a wall clock."""

    def __init__(self, clock: Optional[WallClock] = None) -> None:
        self._clock = clock if clock is not None else WallClock()
        self._now = 0.0
        self._seq = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = False
        #: seq -> event, insertion-ordered (deterministic iteration).
        self._pending: Dict[int, LiveEvent] = {}
        #: Callbacks dispatched so far (observability / tests).
        self.fired = 0

    # ------------------------------------------------------------------
    # TimerScheduler interface
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Session time, frozen between dispatch points."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> LiveEvent:
        """Run ``callback(*args)`` ``delay`` seconds from now."""
        self._seq += 1
        expiry = self._now + max(0.0, delay)
        event = LiveEvent(self, self._seq, expiry, callback, args)
        self._pending[event.seq] = event
        if self._loop is not None:
            self._arm(event)
        return event

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bind the loop, zero the session clock, arm parked events."""
        self._loop = loop
        if not self._started:
            self._clock.restart()
            self._started = True
        for event in sorted(self._pending.values(),
                            key=lambda ev: (ev.expiry, ev.seq)):
            self._arm(event)

    def stop(self) -> None:
        """Unbind the loop; pending events stay parked for a restart."""
        for event in self._pending.values():
            if event.handle is not None:
                event.handle.cancel()
                event.handle = None
        self._loop = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def advance(self) -> float:
        """Unfreeze: move ``now`` up to real elapsed session time.

        Called at every dispatch point (timer fire, datagram arrival)
        *before* the work runs. ``now`` never goes backwards.
        """
        if self._started:
            elapsed = self._clock.elapsed()
            if elapsed > self._now:
                self._now = elapsed
        return self._now

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def clock(self) -> WallClock:
        """The wall clock session time is measured against."""
        return self._clock

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def peek_expiry(self) -> Optional[float]:
        """Earliest pending expiry (session time), or None."""
        best: Optional[float] = None
        for event in self._pending.values():
            if best is None or event.expiry < best:
                best = event.expiry
        return best

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _arm(self, event: LiveEvent) -> None:
        assert self._loop is not None
        if event.handle is not None:
            event.handle.cancel()
        remaining = max(0.0, event.expiry - self._clock.elapsed())
        event.handle = self._loop.call_later(remaining, self._fire, event)

    def _fire(self, event: LiveEvent) -> None:
        self._pending.pop(event.seq, None)
        event.handle = None
        if event.cancelled:
            return
        self.advance()
        event.fired = True
        self.fired += 1
        event.callback(*event.args)

    def _forget(self, event: LiveEvent) -> None:
        self._pending.pop(event.seq, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LiveScheduler now={self._now:.4f} "
                f"pending={len(self._pending)}>")
