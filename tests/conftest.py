"""Shared fixtures and helpers for the SRM reproduction test suite."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import pytest
from hypothesis import settings as hypothesis_settings

from repro import env as srm_env
from repro.core.agent import SrmAgent
from repro.core.config import SrmConfig
from repro.net.network import Network
from repro.net.packet import GroupAddress
from repro.oracle.base import check_mode_enabled
from repro.sim.rng import RandomSource
from repro.topology.spec import TopologySpec

# ----------------------------------------------------------------------
# Hypothesis profiles
# ----------------------------------------------------------------------
# All property tests share these profiles instead of hand-picking
# max_examples/deadline per test. ``deadline=None`` everywhere: the
# simulations' wall time varies wildly across machines and CI workers,
# and flaky deadline failures taught us it is never a useful signal
# here. ``print_blob=True`` so a CI failure prints the
# ``@reproduce_failure`` blob needed to replay it locally.
#
# Select with SRM_HYPOTHESIS_PROFILE=ci|dev|nightly (default: ci).

_PROFILE_SCALE = {"ci": 1.0, "dev": 0.3, "nightly": 8.0}

for _name, _scale in _PROFILE_SCALE.items():
    hypothesis_settings.register_profile(
        _name, deadline=None, print_blob=True, derandomize=(_name == "ci"))

_ACTIVE_PROFILE = srm_env.hypothesis_profile()
if _ACTIVE_PROFILE not in _PROFILE_SCALE:
    raise RuntimeError(
        f"SRM_HYPOTHESIS_PROFILE={_ACTIVE_PROFILE!r}: expected one of "
        f"{sorted(_PROFILE_SCALE)}")
hypothesis_settings.load_profile(_ACTIVE_PROFILE)


def examples(base: int) -> int:
    """Scale a test's baseline example count by the active profile.

    ``base`` is the count the test wants under the ``ci`` profile; the
    ``dev`` profile shrinks it for fast local iteration and ``nightly``
    multiplies it for the deep cron run.
    """
    return max(1, round(base * _PROFILE_SCALE[_ACTIVE_PROFILE]))


def build_srm_session(spec: TopologySpec, members: Iterable[int],
                      config: Optional[SrmConfig] = None, seed: int = 0,
                      delivery: str = "direct",
                      ) -> Tuple[Network, Dict[int, SrmAgent], GroupAddress]:
    """Instantiate a network and attach SRM agents on the given members."""
    network = spec.build(delivery=delivery)
    network.trace.enabled = True
    group = network.groups.allocate("session")
    master = RandomSource(seed)
    agents: Dict[int, SrmAgent] = {}
    for member in members:
        agent = SrmAgent(config if config is None else config.copy(),
                         master.fork(f"member-{member}"))
        network.attach(member, agent)
        agent.join_group(group)
        agents[member] = agent
    return network, agents, group


def at(network: Network, time: float, callback, *args) -> None:
    """Schedule a callback at an absolute simulated time."""
    network.scheduler.schedule_at(time, callback, *args)


@pytest.fixture
def rng() -> RandomSource:
    return RandomSource(12345)


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the default result cache at a per-test tmp dir.

    CLI commands cache results under ``results/.cache`` by default;
    tests must never read stale cached results (or litter the repo), so
    every test sees a fresh empty cache location.
    """
    monkeypatch.setenv("SRM_CACHE_DIR", str(tmp_path / "srm-cache"))


@pytest.fixture(autouse=True)
def _protocol_oracles(request, monkeypatch):
    """With SRM_CHECK=1, run every test under the protocol oracles.

    Every :class:`Network` a test builds gets a passive
    :class:`repro.oracle.SessionOracleSuite` subscribed to its trace;
    at teardown each suite's findings are verified and any invariant
    break fails the test with a violation report. Passive mode leaves
    the trace's enabled flag alone (a network that never turns tracing
    on is simply not observed) so the fixture cannot perturb tests that
    assert on trace contents beyond the extra ``deliver`` records.
    """
    if not check_mode_enabled():
        yield
        return
    from repro.oracle import SessionOracleSuite

    suites = []
    original_init = Network.__init__

    def watched_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        suites.append(SessionOracleSuite.attach(self, enable_trace=False))

    monkeypatch.setattr(Network, "__init__", watched_init)
    yield
    for suite in suites:
        suite.verify(context=request.node.nodeid)
