"""The invariant checkers.

Each oracle validates one behavioral claim of the paper against the live
trace stream:

* :class:`SchedulerMonotonicityOracle` — simulated time never runs
  backwards; every record is stamped with the scheduler's current time.
* :class:`ScopeTtlOracle` — no multicast packet is observed at a node its
  TTL could not legally reach, hop counts match the source tree, and
  admin-scoped packets never leave their zone (Section VII-B1).
* :class:`RequestTimerOracle` — request timers are drawn from
  ``[f*C1*d, f*(C1+C2)*d]`` with ``f`` the exponential backoff factor,
  backoff counts advance by exactly one, and footnote 1's
  ignore-backoff heuristic is applied legally (Section III-B).
* :class:`RepairHolddownOracle` — after sending or receiving a repair, a
  member sends no second repair for the same data within the 3·d
  hold-down window (Section III-B).
* :class:`SuppressionOracle` — repair timers are drawn from
  ``[D1*d, (D1+D2)*d]``, at most one repair timer per (member, name) is
  pending, and a cancellation is justified by a repair actually heard.
* :class:`DeliveryConsistencyOracle` — at quiescence, every stable
  member holds every ADU (or legally abandoned it), and all copies are
  identical (Section II-A's eventual-consistency claim).

A member's ``recovery_reset`` trace marker (experiment rounds, group
departure) clears that member's per-name suppression state, mirroring
``SrmAgent.reset_recovery_state``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.oracle.base import EPSILON, Oracle, SessionOracleSuite
from repro.sim.trace import TraceRecord

Key = Tuple[Any, Any]  # (node id, ADU name)


def _clear_node(table: Dict[Key, Any], node: Any) -> None:
    for key in [key for key in table if key[0] == node]:
        del table[key]


class SchedulerMonotonicityOracle(Oracle):
    """No event fires before ``now``; records carry the current time."""

    name = "scheduler-sanity"

    def __init__(self, suite: "SessionOracleSuite") -> None:
        super().__init__(suite)
        self._last = float("-inf")

    def reset(self) -> None:
        super().reset()
        self._last = float("-inf")

    def on_record(self, record: TraceRecord) -> None:
        if record.time < self._last - EPSILON:
            self.violate(record.time, record.node,
                         f"time ran backwards: {record.kind} at "
                         f"{record.time:.6f} after t={self._last:.6f}")
        now = self.suite.network.scheduler.now
        if abs(record.time - now) > EPSILON:
            self.violate(record.time, record.node,
                         f"{record.kind} stamped {record.time:.6f} while "
                         f"the scheduler clock reads {now:.6f}")
        if record.time > self._last:
            self._last = record.time


class ScopeTtlOracle(Oracle):
    """Deliveries respect TTL thresholds, hop counts and scope zones."""

    name = "scope-ttl"

    def on_record(self, record: TraceRecord) -> None:
        if record.kind != "deliver" or not record.detail.get("mcast"):
            return
        detail = record.detail
        node, origin = record.node, detail["origin"]
        if node == origin:
            return
        network = self.suite.network
        try:
            tree = network.source_tree(origin)
        except (KeyError, ValueError):
            return  # origin unroutable; nothing to validate against
        if node not in tree.ttl_required:
            return
        initial_ttl = detail["initial_ttl"]
        if initial_ttl < tree.ttl_required[node]:
            self.violate(record.time, node,
                         f"packet from {origin} delivered with initial TTL "
                         f"{initial_ttl} < required {tree.ttl_required[node]}")
        travelled = initial_ttl - detail["ttl"]
        if travelled != tree.hops[node]:
            self.violate(record.time, node,
                         f"packet from {origin} travelled {travelled} hops "
                         f"by TTL arithmetic but the source tree says "
                         f"{tree.hops[node]}")
        zone = detail.get("zone")
        if zone is not None:
            zone_nodes = network.scope_zones.get(zone)
            if zone_nodes is None:
                self.violate(record.time, node,
                             f"packet scoped to unknown zone {zone!r}")
            else:
                outside = [hop for hop in tree.path(node)
                           if hop not in zone_nodes]
                if outside:
                    self.violate(
                        record.time, node,
                        f"packet scoped to zone {zone!r} crossed nodes "
                        f"{outside} outside the zone")


@dataclass
class _RequestState:
    expected_backoff: int = 0
    detected_at: Optional[float] = None
    current_ignore: Optional[float] = None
    previous_ignore: Optional[float] = None


class RequestTimerOracle(Oracle):
    """Request-timer intervals, backoff doubling, ignore-backoff rule."""

    name = "request-timer"

    def __init__(self, suite: "SessionOracleSuite") -> None:
        super().__init__(suite)
        self._states: Dict[Key, _RequestState] = {}

    def reset(self) -> None:
        super().reset()
        self._states.clear()

    def on_record(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind == "recovery_reset":
            _clear_node(self._states, record.node)
            return
        if kind not in ("loss_detected", "request_timer_set",
                        "request_backoff", "request_dup_ignored",
                        "request_abandoned"):
            return
        if self.suite.shared_node(record.node):
            return  # co-located sessions: (node, name) keys collide
        name = record.detail.get("name")
        key = (record.node, name)
        if kind == "loss_detected":
            self._states[key] = _RequestState(detected_at=record.time)
        elif kind == "request_timer_set":
            self._on_timer_set(record, key)
        elif kind == "request_backoff":
            self._on_backoff(record, key)
        elif kind == "request_dup_ignored":
            self._on_dup_ignored(record, key)
        elif kind == "request_abandoned":
            self._states.pop(key, None)

    def _on_timer_set(self, record: TraceRecord, key: Key) -> None:
        detail = record.detail
        backoff = detail["backoff"]
        state = self._states.get(key)
        if backoff == 0:
            if state is None or state.detected_at != record.time:
                self.violate(record.time, record.node,
                             "request timer (re)started at backoff 0 "
                             "without a loss detection at this instant",
                             name=detail["name"])
                state = self._states[key] = _RequestState()
        else:
            if state is None:
                self.violate(record.time, record.node,
                             f"request timer set at backoff {backoff} with "
                             "no recovery state for this name",
                             name=detail["name"])
                state = self._states[key] = _RequestState()
            elif backoff != state.expected_backoff:
                self.violate(record.time, record.node,
                             f"backoff count jumped to {backoff}; expected "
                             f"{state.expected_backoff} (must advance by "
                             "exactly one per reschedule)",
                             name=detail["name"])
        self._check_delay(record, backoff)
        state.previous_ignore = state.current_ignore
        state.current_ignore = detail["ignore_until"]
        state.expected_backoff = backoff + 1

    def _check_delay(self, record: TraceRecord, backoff: int) -> None:
        """``delay`` must lie in ``[f*C1*d, f*(C1+C2)*d]``.

        Only checked with oracle distances and fixed (non-adaptive)
        parameters; otherwise the bounds depend on state the trace does
        not carry.
        """
        config = self.suite.config_for(record.node)
        if config is None or config.adaptive or not config.distance_oracle:
            return
        name = record.detail["name"]
        distance = self.suite.distance(record.node, name.source)
        if distance is None:
            return
        delay = record.detail["delay"]
        factor = config.backoff_factor() ** backoff
        low = factor * config.c1 * distance
        high = factor * (config.c1 + config.c2) * distance
        if high <= 0.0:
            legal = delay <= 1e-9 + EPSILON
        else:
            legal = low - EPSILON <= delay <= high + EPSILON
        if not legal:
            self.violate(record.time, record.node,
                         f"request timer delay {delay:.6f} outside "
                         f"[{low:.6f}, {high:.6f}] "
                         f"(backoff {backoff}, distance {distance:.4f})",
                         name=name)

    def _on_backoff(self, record: TraceRecord, key: Key) -> None:
        state = self._states.get(key)
        if state is None:
            self.violate(record.time, record.node,
                         "request backoff traced with no recovery state",
                         name=record.detail.get("name"))
            return
        # The new timer was already set (and traced) by the time this
        # marker is emitted, so legality is judged against the window in
        # effect when the duplicate request arrived: the previous one.
        ignore_until = state.previous_ignore
        if ignore_until is not None and record.time < ignore_until - EPSILON:
            self.violate(record.time, record.node,
                         f"backed off on a duplicate request at "
                         f"{record.time:.6f}, inside the ignore-backoff "
                         f"window (until {ignore_until:.6f})",
                         name=record.detail.get("name"))

    def _on_dup_ignored(self, record: TraceRecord, key: Key) -> None:
        state = self._states.get(key)
        name = record.detail.get("name")
        if state is None or state.current_ignore is None:
            self.violate(record.time, record.node,
                         "duplicate request ignored with no ignore-backoff "
                         "window in effect", name=name)
        elif record.time > state.current_ignore + EPSILON:
            self.violate(record.time, record.node,
                         f"duplicate request ignored at {record.time:.6f}, "
                         f"after the ignore-backoff window expired "
                         f"({state.current_ignore:.6f}); it should have "
                         "backed off the timer", name=name)


class RepairHolddownOracle(Oracle):
    """No duplicate repair from one member inside the 3·d hold-down.

    The windows are recomputed here from the trace, the config and true
    distances — never read from the agent — so an agent that stops
    enforcing its hold-down is caught rather than believed.
    """

    name = "repair-holddown"

    def __init__(self, suite: "SessionOracleSuite") -> None:
        super().__init__(suite)
        self._windows: Dict[Key, float] = {}

    def reset(self) -> None:
        super().reset()
        self._windows.clear()

    def on_record(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind == "recovery_reset":
            _clear_node(self._windows, record.node)
            return
        if kind in ("send_repair", "recv_repair",
                    "request_ignored_holddown") \
                and self.suite.shared_node(record.node):
            return  # co-located sessions: (node, name) keys collide
        if kind == "send_repair":
            key = (record.node, record.detail["name"])
            window_end = self._windows.get(key)
            if window_end is not None and record.time < window_end - EPSILON:
                self.violate(record.time, record.node,
                             f"repair sent at {record.time:.6f} inside the "
                             f"hold-down window (until {window_end:.6f}) "
                             "opened by an earlier repair",
                             name=record.detail["name"])
            self._open_window(record)
        elif kind == "recv_repair":
            self._open_window(record)
        elif kind == "request_ignored_holddown":
            key = (record.node, record.detail["name"])
            window_end = self._windows.get(key)
            if window_end is None or record.time > window_end + EPSILON:
                self.violate(record.time, record.node,
                             "request ignored claiming an active hold-down, "
                             "but no hold-down window is in effect",
                             name=record.detail["name"])

    def _open_window(self, record: TraceRecord) -> None:
        """Mirror ``SrmAgent._set_holddown`` (overwrite semantics)."""
        node = record.node
        name = record.detail["name"]
        answering = record.detail.get("answering")
        anchor = answering if answering is not None else name.source
        if anchor == node:
            anchor = name.source
        config = self.suite.config_for(node)
        factor = config.holddown_factor if config is not None else 3.0
        distance = self._distance(node, anchor, config)
        if distance is None:
            return
        self._windows[(node, name)] = record.time + factor * distance

    def _distance(self, node: Any, anchor: Any,
                  config: Optional[Any]) -> Optional[float]:
        if config is None or config.distance_oracle:
            return self.suite.distance(node, anchor)
        agent = self.suite.agent_for(node)
        if agent is None:
            return None
        if anchor == node:
            return 0.0
        try:
            return agent.distances.distance(anchor)
        except KeyError:
            return None


class SuppressionOracle(Oracle):
    """Repair-timer legality: interval bounds, single pending timer,
    and cancellations justified by a repair actually heard."""

    name = "suppression"

    def __init__(self, suite: "SessionOracleSuite") -> None:
        super().__init__(suite)
        self._pending: Dict[Key, Tuple[float, Any]] = {}
        self._last_recv: Dict[Key, float] = {}

    def reset(self) -> None:
        super().reset()
        self._pending.clear()
        self._last_recv.clear()

    def on_record(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind == "recovery_reset":
            _clear_node(self._pending, record.node)
            _clear_node(self._last_recv, record.node)
            return
        if kind not in ("repair_scheduled", "send_repair",
                        "repair_cancelled", "recv_repair"):
            return
        if self.suite.shared_node(record.node):
            return  # co-located sessions: (node, name) keys collide
        name = record.detail.get("name")
        key = (record.node, name)
        if kind == "recv_repair":
            self._last_recv[key] = record.time
        elif kind == "repair_scheduled":
            if key in self._pending:
                self.violate(record.time, record.node,
                             "second repair timer scheduled while one is "
                             "already pending for this name", name=name)
            self._pending[key] = (record.time, record.detail["requester"])
        elif kind == "send_repair":
            entry = self._pending.pop(key, None)
            if entry is None:
                self.violate(record.time, record.node,
                             "repair sent without a scheduled repair timer",
                             name=name)
            else:
                self._check_delay(record, entry)
        elif kind == "repair_cancelled":
            if self._pending.pop(key, None) is None:
                self.violate(record.time, record.node,
                             "cancelled a repair timer that was never "
                             "scheduled", name=name)
            if self._last_recv.get(key) != record.time:
                self.violate(record.time, record.node,
                             "repair timer cancelled without a repair heard "
                             "at this instant (suppression requires hearing "
                             "another member's repair)", name=name)

    def _check_delay(self, record: TraceRecord,
                     entry: Tuple[float, Any]) -> None:
        """``delay`` must lie in ``[D1*d, (D1+D2)*d]``.

        Only checked when D1/D2 are explicitly configured (the log10(G)
        default moves with group size) and parameters are fixed.
        """
        config = self.suite.config_for(record.node)
        if (config is None or config.adaptive
                or config.d1 is None or config.d2 is None
                or not config.distance_oracle):
            return
        set_at, requester = entry
        distance = self.suite.distance(record.node, requester)
        if distance is None:
            return
        delay = record.time - set_at
        low = config.d1 * distance
        high = (config.d1 + config.d2) * distance
        if high <= 0.0:
            legal = delay <= 1e-9 + EPSILON
        else:
            legal = low - EPSILON <= delay <= high + EPSILON
        if not legal:
            self.violate(record.time, record.node,
                         f"repair timer delay {delay:.6f} outside "
                         f"[{low:.6f}, {high:.6f}] "
                         f"(distance to requester {distance:.4f})",
                         name=record.detail.get("name"))


class DeliveryConsistencyOracle(Oracle):
    """Eventual delivery and copy consistency, checked at quiescence."""

    name = "delivery-consistency"

    def __init__(self, suite: "SessionOracleSuite") -> None:
        super().__init__(suite)
        self._sent: Dict[Any, Any] = {}       # name -> source node
        self._abandoned: Set[Key] = set()

    def reset(self) -> None:
        super().reset()
        self._sent.clear()
        self._abandoned.clear()

    def on_record(self, record: TraceRecord) -> None:
        if record.kind == "send_data":
            self._sent[record.detail["name"]] = record.node
        elif record.kind == "request_abandoned":
            self._abandoned.add((record.node, record.detail["name"]))

    def finish(self) -> None:
        suite = self.suite
        agents = suite.agents
        if not agents:
            return
        now = suite.network.scheduler.now
        members = suite.assert_delivery_members
        if members is None:
            members = [node for node, agent in agents.items()
                       if agent.group is not None]
        for name, source in self._sent.items():
            self._check_name(name, source, agents, members, now)

    def _check_name(self, name: Any, source: Any, agents: Dict[Any, Any],
                    members: List[Any], now: float) -> None:
        reference: Any = None
        reference_holder: Any = None
        for node, agent in agents.items():
            if not agent.store.have(name):
                continue
            value = agent.store.get(name)
            if reference_holder is None:
                reference, reference_holder = value, node
            elif value != reference:
                self.violate(now, node,
                             f"holds a copy that differs from node "
                             f"{reference_holder}'s (consistency broken)",
                             name=name)
        for member in members:
            agent = agents.get(member)
            if agent is None or agent.store.have(name):
                continue
            if (member, name) in self._abandoned:
                continue
            if name in agent.pending_requests():
                continue  # run was cut at a horizon mid-recovery
            self.violate(now, member,
                         f"never received ADU from node {source} and has "
                         "neither a pending request nor an abandonment",
                         name=name)


def default_oracles() -> List[type]:
    """The full suite (needs agent visibility for the delivery check)."""
    return [SchedulerMonotonicityOracle, ScopeTtlOracle, RequestTimerOracle,
            RepairHolddownOracle, SuppressionOracle,
            DeliveryConsistencyOracle]


def passive_oracles() -> List[type]:
    """Trace-only invariants, safe to attach to any network mid-test.

    Eventual delivery is excluded: it only holds for runs driven to
    quiescence with stable membership, which arbitrary unit tests are
    not.
    """
    return [SchedulerMonotonicityOracle, ScopeTtlOracle, RequestTimerOracle,
            RepairHolddownOracle, SuppressionOracle]
