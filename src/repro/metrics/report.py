"""Human-readable rendering of a metrics bundle (``repro report``)."""

from __future__ import annotations

from typing import Optional

from repro.metrics.bundle import RunMetrics


def format_metrics_report(bundle: RunMetrics,
                          source: Optional[str] = None) -> str:
    """The report card printed under a run's figure table."""
    lines = []
    title = bundle.experiment or "run"
    lines.append(f"== metrics report: {title} ==")
    if source:
        lines.append(f"bundle: {source}")
    lines.append(f"rounds: {bundle.rounds}   loss events: "
                 f"{bundle.loss_events}")

    lines.append("")
    lines.append("-- per loss event --")
    events = bundle.loss_events or 1
    for label, total in (
            ("requests", bundle.requests),
            ("repairs", bundle.repairs),
            ("second-step repairs", bundle.second_step_repairs),
            ("duplicate requests", bundle.duplicate_requests),
            ("duplicate repairs", bundle.duplicate_repairs),
            ("losses detected", bundle.losses_detected),
            ("recoveries", bundle.recoveries)):
        mean = total / events if bundle.loss_events else 0.0
        lines.append(f"{label:<22} total {total:>8}   mean {mean:8.3f}")

    lines.append("")
    lines.append("-- delay distributions (units of requester RTT) --")
    lines.append(f"{'distribution':<22} {'count':>6} {'mean':>8} "
                 f"{'p50':>8} {'p90':>8} {'max':>8}")
    for label, card in bundle.summaries().items():
        lines.append(
            f"{label:<22} {card['count']:>6} {_num(card['mean']):>8} "
            f"{_num(card['p50']):>8} {_num(card['p90']):>8} "
            f"{_num(card['max']):>8}")

    if bundle.timers:
        lines.append("")
        lines.append("-- timers --")
        for kind, count in sorted(bundle.timers.items()):
            lines.append(f"{kind:<28} {count:>8}")

    if bundle.control_packets:
        members = len(bundle.control_packets)
        total = sum(bundle.control_packets.values())
        lines.append("")
        lines.append("-- control bandwidth --")
        lines.append(f"members sending control traffic: {members}")
        lines.append(f"control packets: {total}   control bytes: "
                     f"{bundle.control_bytes}")
        lines.append(f"control bytes per member: "
                     f"{bundle.control_bytes / members:.1f}")

    if bundle.kernel:
        lines.append("")
        lines.append("-- kernel counters --")
        for key, value in sorted(bundle.kernel.items()):
            if key == "packets_by_kind":
                continue
            lines.append(f"{key:<28} {value:>10}")
        by_kind = bundle.kernel.get("packets_by_kind") or {}
        for kind, count in sorted(by_kind.items()):
            lines.append(f"  packets[{kind}]{'':<{max(0, 14 - len(kind))}} "
                         f"{count:>10}")

    if bundle.meta:
        lines.append("")
        lines.append("-- meta --")
        for key, value in sorted(bundle.meta.items()):
            lines.append(f"{key}: {value}")
    return "\n".join(lines)


def _num(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.3f}"
