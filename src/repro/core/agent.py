"""The SRM protocol agent (Section III of the paper).

One :class:`SrmAgent` per session member. The agent

* multicasts new application data to the group,
* detects its own losses (sequence gaps and session-message high-water
  marks) — the receiver-based reliability of Section II-A,
* schedules *request timers* drawn from ``[C1*d, (C1+C2)*d]`` of the
  estimated one-way delay ``d`` to the data's source, suppressing and
  exponentially backing off when another member's request is heard,
* answers requests it can serve with *repair timers* drawn from
  ``[D1*d, (D1+D2)*d]`` of the delay to the requester, cancelled when
  another member's repair is heard,
* enforces the 3·d hold-down that keeps duplicate requests from
  triggering a second wave of repairs,
* optionally adapts its timer parameters (Section VII-A) and scopes its
  requests/repairs for local recovery (Section VII-B).

Everything observable is also emitted into the network's trace; the
experiment layer (``repro.experiments``) is a pure consumer of traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.core import timer_math
from repro.core.adaptive import AdaptiveTimers
from repro.core.config import SrmConfig, TimerParams
from repro.core.messages import (
    KIND_DATA,
    KIND_PAGE_REPLY,
    KIND_PAGE_REQUEST,
    KIND_REPAIR,
    KIND_REQUEST,
    KIND_SESSION,
    DataPayload,
    PageReplyPayload,
    PageRequestPayload,
    RepairPayload,
    RequestPayload,
)
from repro.core.names import DEFAULT_PAGE, AduName, PageId
from repro.core.session import (
    DistanceEstimator,
    OracleDistance,
    SessionDistance,
    SessionProtocol,
)
from repro.core.fec import KIND_FEC, FecCodec
from repro.core.state import DataStore, ReceptionState
from repro.core.transmit import (
    PRIORITY_CURRENT_PAGE_CONTROL,
    PRIORITY_NEW_DATA,
    PRIORITY_OLD_PAGE_CONTROL,
    TransmitQueue,
)
from repro.net.node import Agent
from repro.net.packet import DEFAULT_TTL, GroupAddress, Packet
from repro.sim.rng import RandomSource
from repro.sim.timers import Timer


@dataclass
class RequestContext:
    """Recovery state for one missing ADU at one member."""

    name: AduName
    detected_at: float
    timer: Timer
    backoff_count: int = 0
    ignore_backoff_until: float = float("-inf")
    requests_observed: int = 0
    sent_request: bool = False
    first_request_seen: bool = False
    rounds: int = 0
    request_ttl_used: int = DEFAULT_TTL
    request_zone_used: Optional[str] = None
    group: Optional[GroupAddress] = None
    done: bool = False


@dataclass
class RepairContext:
    """Pending-answer state for one request this member can serve."""

    name: AduName
    requester: int
    set_at: float
    timer: Timer
    repairs_observed: int = 0
    sent_repair: bool = False
    request_initial_ttl: int = DEFAULT_TTL
    request_hops: int = 0
    request_zone: Optional[str] = None
    reply_group: Optional[GroupAddress] = None
    done: bool = False


@dataclass
class PageRequestContext:
    """Suppression state for one page-state request."""

    page: PageId
    timer: Timer
    is_reply: bool = False  # True when we hold state and plan to reply
    done: bool = False


class SrmAgent(Agent):
    """A session member implementing the SRM framework."""

    def __init__(self, config: Optional[SrmConfig] = None,
                 rng: Optional[RandomSource] = None,
                 on_app_receive: Optional[
                     Callable[[AduName, Any], None]] = None) -> None:
        super().__init__()
        self.config = config if config is not None else SrmConfig()
        self.rng = rng if rng is not None else RandomSource()
        self.on_app_receive = on_app_receive
        self.group: Optional[GroupAddress] = None
        self.store = DataStore()
        self.reception = ReceptionState(
            adopt_streams=self.config.adopt_streams)
        self.current_page: PageId = DEFAULT_PAGE
        self.distances: DistanceEstimator = SessionDistance(
            self.config.default_distance)
        self.session: Optional[SessionProtocol] = None
        self.adaptive: Optional[AdaptiveTimers] = None
        self.transmitter: Optional[TransmitQueue] = None
        self.fec: Optional[FecCodec] = None
        self._fixed_params: Optional[TimerParams] = None
        self._requests: Dict[AduName, RequestContext] = {}
        self._repairs: Dict[AduName, RepairContext] = {}
        self._page_requests: Dict[PageId, PageRequestContext] = {}
        self._holddown: Dict[AduName, float] = {}
        self._next_seq: Dict[PageId, int] = {}
        self._last_request_period_at = float("-inf")
        self._last_repair_period_name: Optional[AduName] = None
        #: Recovery-group routing rules: (page, source, group); the first
        #: match decides which group a request for a name goes to.
        self._recovery_rules: list = []
        #: Groups this agent listens on (like sockets bound to group
        #: addresses); multicast for any other group is ignored -- several
        #: agents can share one node (e.g. one per subscription layer).
        self._joined_groups: set = set()
        # Counters for tests and lightweight instrumentation.
        self.data_sent = 0
        self.data_received = 0
        self.losses_detected = 0
        self.requests_sent = 0
        self.repairs_sent = 0
        self.requests_suppressed = 0
        self.repairs_cancelled = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def join_group(self, group: GroupAddress) -> None:
        """Join the session's multicast group and initialize estimators."""
        if self.network is None:
            raise RuntimeError("attach the agent to a network node first")
        self.group = group
        self.network.join(self.node_id, group)
        self._joined_groups.add(group)
        if self.config.distance_oracle:
            self.distances = OracleDistance(self)
        if self.config.session_enabled:
            self.session = SessionProtocol(self)
            self.session.start()
        if self.config.adaptive:
            self.adaptive = AdaptiveTimers(self.config, self.group_size())
        if self.config.rate_limit is not None:
            self.transmitter = TransmitQueue(
                self.network.scheduler, self.config.rate_limit,
                self.config.rate_limit_depth)
        if self.config.fec_block is not None:
            self.fec = FecCodec(self, self.config.fec_block)

    def leave_group(self) -> None:
        if self.group is not None:
            if self.session is not None:
                self.session.stop()
            # A departing member stops participating in loss recovery:
            # pending request/repair timers would otherwise fire after
            # ``self.group`` is gone and multicast into a None group.
            self.reset_recovery_state()
            self.network.leave(self.node_id, self.group)
            self._joined_groups.discard(self.group)
            self.group = None

    def group_size(self) -> int:
        if self.group is None:
            return 1
        return self.network.group_size(self.group)

    @property
    def params(self) -> TimerParams:
        """Current timer parameters (adaptive state or fixed config)."""
        if self.adaptive is not None:
            return self.adaptive.params
        if self._fixed_params is None:
            self._fixed_params = self.config.fixed_params(self.group_size())
        return self._fixed_params

    def trace(self, kind: str, **detail: Any) -> None:
        trace = self.network.trace
        if trace.enabled:
            trace.record(self._scheduler.now, self.node_id, kind, **detail)

    def _distance_or_default(self, peer: int) -> float:
        """Distance to a peer, tolerating unknown/departed node ids.

        A page creator may have left the session (or be a Source-ID we
        have never heard from); the timer then falls back to the default
        distance rather than failing.
        """
        if peer == self.node_id:
            return self.config.default_distance
        try:
            return self.distances.distance(peer)
        except KeyError:
            return self.config.default_distance

    def _transmit(self, kind: str, payload: Any, ttl: int, size: int,
                  priority: int,
                  group: Optional[GroupAddress] = None,
                  scope_zone: Optional[str] = None) -> None:
        """Multicast to a group, through the pacer when configured.

        ``group`` defaults to the session group; loss-recovery traffic
        may be redirected to a separate recovery group (Section VII-B2).
        Protocol bookkeeping (timers, backoff, traces) happens at the
        decision time; the token bucket delays only the wire
        transmission, exactly as a host rate limiter would.
        """
        target = group if group is not None else self.group

        def send() -> None:
            self.network.send_multicast(self.node_id, target, kind,
                                        payload, ttl=ttl, size=size,
                                        scope_zone=scope_zone)

        if self.transmitter is None:
            send()
        else:
            self.transmitter.submit(priority, size, send)

    def _control_priority(self, name: AduName) -> int:
        """Section III-E: current-page control first, old pages last."""
        if name.page == self.current_page:
            return PRIORITY_CURRENT_PAGE_CONTROL
        return PRIORITY_OLD_PAGE_CONTROL

    # ------------------------------------------------------------------
    # Sending application data
    # ------------------------------------------------------------------

    def send_data(self, data: Any, page: Optional[PageId] = None) -> AduName:
        """Name and multicast a new ADU; returns the assigned name."""
        if self.group is None:
            raise RuntimeError("join a group before sending")
        page = page if page is not None else self.current_page
        seq = self._next_seq.get(page, 0) + 1
        self._next_seq[page] = seq
        name = AduName(self.node_id, page, seq)
        self.store.put(name, data)
        self.reception.mark_received(name)
        self._transmit(KIND_DATA, DataPayload(name=name, data=data),
                       ttl=DEFAULT_TTL, size=self.config.data_packet_size,
                       priority=PRIORITY_NEW_DATA)
        self.data_sent += 1
        self.trace("send_data", name=name)
        if self.fec is not None:
            self.fec.on_data_sent(name, data)
        if self.session is not None:
            self.session.on_data_sent()
        return name

    def create_page(self, number: int) -> PageId:
        """Create a new page owned by this member (wb semantics)."""
        return PageId(creator=self.node_id, number=number)

    def peek_next_seq(self, page: Optional[PageId] = None) -> int:
        """The sequence number the next :meth:`send_data` will assign.

        Lets applications bind metadata (e.g. integrity tags) to the
        name before sending.
        """
        page = page if page is not None else self.current_page
        return self._next_seq.get(page, 0) + 1

    # ------------------------------------------------------------------
    # Separate recovery groups (Section VII-B2)
    # ------------------------------------------------------------------

    def join_recovery_group(self, group: GroupAddress,
                            page: Optional[PageId] = None,
                            source: Optional[int] = None) -> None:
        """Route future requests for matching data onto ``group``.

        ``page``/``source`` restrict the rule (None matches anything).
        The member also joins the group so it hears the answering
        traffic. Repairs always answer on the group the request arrived
        on, so repliers need no rules of their own.
        """
        self.network.join(self.node_id, group)
        self._joined_groups.add(group)
        self._recovery_rules.append((page, source, group))

    def leave_recovery_group(self, group: GroupAddress) -> None:
        """Remove the rules for ``group`` and leave it."""
        self._recovery_rules = [rule for rule in self._recovery_rules
                                if rule[2] != group]
        self._joined_groups.discard(group)
        self.network.leave(self.node_id, group)

    def _recovery_group_for(self, name: AduName) -> Optional[GroupAddress]:
        for page, source, group in self._recovery_rules:
            if page is not None and name.page != page:
                continue
            if source is not None and name.source != source:
                continue
            return group
        return None

    # ------------------------------------------------------------------
    # Receive dispatch
    # ------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        dst = packet.dst
        if (dst.__class__ is GroupAddress and dst is not self.group
                and dst not in self._joined_groups):
            # Another agent on this node joined that group; not ours.
            # (Class check rather than the is_multicast property, and an
            # identity check against the primary group before hashing
            # into the joined set: this runs once per delivered packet,
            # and group addresses are shared objects in the simulator.)
            return
        kind = packet.kind
        if kind == KIND_DATA:
            payload: DataPayload = packet.payload
            self._accept_data(payload.name, payload.data, is_repair=False)
        elif kind == KIND_SESSION:
            # Second in the chain: session traffic outnumbers every
            # packet kind except data in a steady-state group.
            if self.session is not None:
                self.session.handle(packet.payload)
        elif kind == KIND_REQUEST:
            self._handle_request(packet)
        elif kind == KIND_REPAIR:
            self._handle_repair(packet)
        elif kind == KIND_PAGE_REQUEST:
            self._handle_page_request(packet.payload)
        elif kind == KIND_PAGE_REPLY:
            self._handle_page_reply(packet.payload)
        elif kind == KIND_FEC:
            if self.fec is not None:
                self.fec.on_parity_received(packet.payload)

    # ------------------------------------------------------------------
    # Loss detection and request timers
    # ------------------------------------------------------------------

    def on_loss_detected(self, name: AduName) -> None:
        """Open loss-recovery state for ``name`` and set a request timer."""
        if self.store.have(name) or name in self._requests:
            return
        now = self.now
        if self.adaptive is not None and now > self._last_request_period_at:
            # Fig. 9: close the previous request period and adjust (C1, C2)
            # before the new request timer is set. Losses detected in the
            # same instant share one period.
            self.adaptive.request_period_start()
        self._last_request_period_at = now
        context = RequestContext(
            name=name, detected_at=now,
            timer=Timer(self.network.scheduler, lambda: None))
        context.timer = Timer(self.network.scheduler,
                              lambda: self._request_timer_expired(context),
                              name=f"req:{name}@{self.node_id}")
        context.request_ttl_used = self._request_ttl(name)
        context.request_zone_used = self.config.request_scope_zone
        context.group = self._recovery_group_for(name)
        self._requests[name] = context
        delay = self._draw_request_delay(name, 0)
        context.timer.start(delay)
        self.losses_detected += 1
        self.trace("loss_detected", name=name)
        self.trace("request_timer_set", name=name, delay=delay, backoff=0,
                   ignore_until=None)

    def _draw_request_delay(self, name: AduName, backoff_count: int) -> float:
        params = self.params
        low, high = timer_math.request_delay_bounds(
            self.distances.distance(name.source), params.c1, params.c2,
            backoff_count, self.config.backoff_factor())
        return timer_math.draw_timer(low, high, self.rng.random())

    def _request_ttl(self, name: AduName) -> int:
        if self.config.request_ttl is not None:
            return self.config.request_ttl
        return DEFAULT_TTL

    def _request_timer_expired(self, context: RequestContext) -> None:
        if context.done:
            return
        name = context.name
        if context.rounds >= self.config.max_request_rounds:
            context.done = True
            self.trace("request_abandoned", name=name)
            return
        distance = self.distances.distance(name.source)
        payload = RequestPayload(name=name, requester=self.node_id,
                                 requester_distance_to_source=distance)
        self._transmit(KIND_REQUEST, payload, ttl=context.request_ttl_used,
                       size=self.config.control_packet_size,
                       priority=self._control_priority(name),
                       group=context.group,
                       scope_zone=context.request_zone_used)
        self.requests_sent += 1
        context.rounds += 1
        context.sent_request = True
        self._observe_request(context, requester=self.node_id,
                              reported_distance=distance)
        if self.adaptive is not None:
            self.adaptive.record_request_sent()
        self.trace("send_request", name=name, round=context.rounds,
                   ttl=context.request_ttl_used)
        # "multicasts a request for the missing data, and doubles the
        # request timer to wait for the repair."
        self._backoff_request(context)

    def _backoff_request(self, context: RequestContext) -> None:
        context.backoff_count += 1
        delay = self._draw_request_delay(context.name, context.backoff_count)
        context.timer.reschedule(delay)
        # Footnote 1's heuristic: ignore further duplicate requests until
        # halfway between now and the new expiration time.
        if self.config.ignore_backoff_enabled:
            context.ignore_backoff_until = \
                timer_math.ignore_backoff_until(self.now, delay)
        else:
            context.ignore_backoff_until = float("-inf")
        self.trace("request_timer_set", name=context.name, delay=delay,
                   backoff=context.backoff_count,
                   ignore_until=(context.ignore_backoff_until
                                 if self.config.ignore_backoff_enabled
                                 else None))

    def _observe_request(self, context: RequestContext, requester: int,
                         reported_distance: float) -> None:
        """Count a request (ours or heard) against duplicate statistics."""
        context.requests_observed += 1
        if not context.first_request_seen:
            context.first_request_seen = True
            delay = self.now - context.detected_at
            rtt = self.network.rtt(self.node_id, context.name.source)
            ratio = delay / rtt if rtt > 0 else 0.0
            via = "sent" if requester == self.node_id else "heard"
            self.trace("first_request_event", name=context.name,
                       delay=delay, rtt=rtt, ratio=ratio, via=via)
            if self.adaptive is not None:
                self.adaptive.record_request_delay(ratio)
        elif context.requests_observed >= 2 and requester != self.node_id:
            # Only requests *received* count as duplicates (the paper:
            # "dup_req keeps count of the number of duplicate requests
            # received during one request period"); our own
            # retransmissions in a later iteration do not.
            self.trace("dup_request_observed", name=context.name,
                       requester=requester)
            if self.adaptive is not None:
                own_distance = self.distances.distance(context.name.source)
                self.adaptive.record_duplicate_request(
                    we_sent=context.sent_request,
                    requester_distance=reported_distance,
                    our_distance=own_distance)

    # ------------------------------------------------------------------
    # Handling requests from other members
    # ------------------------------------------------------------------

    def _handle_request(self, packet: Packet) -> None:
        payload: RequestPayload = packet.payload
        name = payload.name
        if self.store.have(name):
            self._consider_repair(packet, payload)
            return
        context = self._requests.get(name)
        if context is not None and not context.done:
            self._observe_request(context, requester=payload.requester,
                                  reported_distance=(
                                      payload.requester_distance_to_source))
            if timer_math.should_backoff(self.now,
                                         context.ignore_backoff_until):
                self._backoff_request(context)
                self.trace("request_backoff", name=name,
                           count=context.backoff_count)
            else:
                self.requests_suppressed += 1
                self.trace("request_dup_ignored", name=name)
            return
        if context is not None:
            return  # abandoned; nothing useful to do
        if self.config.detect_loss_from_requests:
            # A request reveals data we did not know existed: enter loss
            # recovery directly in the backed-off state, as if our own
            # timer had just been reset by this request.
            newly_missing = self.reception.note_high_water(
                name.source, name.page, name.seq)
            for missing in newly_missing:
                self.on_loss_detected(missing)
            fresh = self._requests.get(name)
            if fresh is not None:
                self._observe_request(fresh, requester=payload.requester,
                                      reported_distance=(
                                          payload.requester_distance_to_source))
                self._backoff_request(fresh)

    def _consider_repair(self, packet: Packet,
                         payload: RequestPayload) -> None:
        name = payload.name
        now = self.now
        if now < self._holddown.get(name, float("-inf")):
            self.trace("request_ignored_holddown", name=name)
            return
        existing = self._repairs.get(name)
        if existing is not None and existing.timer.pending:
            self.trace("request_while_repair_pending", name=name)
            return
        if self.adaptive is not None and name != self._last_repair_period_name:
            # A repair period ends when a repair timer is set for a
            # different data item.
            self.adaptive.repair_period_start()
        self._last_repair_period_name = name
        context = RepairContext(
            name=name, requester=payload.requester, set_at=now,
            timer=Timer(self.network.scheduler, lambda: None),
            request_initial_ttl=packet.initial_ttl,
            request_hops=packet.hops_travelled(),
            request_zone=packet.scope_zone,
            reply_group=packet.dst if packet.dst != self.group else None)
        context.timer = Timer(self.network.scheduler,
                              lambda: self._repair_timer_expired(context),
                              name=f"rep:{name}@{self.node_id}")
        self._repairs[name] = context
        context.timer.start(self._draw_repair_delay(payload.requester))
        self.trace("repair_scheduled", name=name,
                   requester=payload.requester)

    def _draw_repair_delay(self, requester: int) -> float:
        params = self.params
        low, high = timer_math.repair_delay_bounds(
            self.distances.distance(requester), params.d1, params.d2)
        return timer_math.draw_timer(low, high, self.rng.random())

    def _repair_ttl(self, context: RepairContext) -> int:
        mode = self.config.local_repair_mode
        if mode is None or context.request_initial_ttl >= DEFAULT_TTL:
            return DEFAULT_TTL
        if mode == "one-step":
            # Cover everything the request covered, from our position:
            # the request's TTL plus our hop distance from the requester.
            return context.request_initial_ttl + context.request_hops
        if mode == "two-step":
            # Step one: a local repair with the TTL the request used,
            # naming the requester (who will re-multicast it).
            return context.request_initial_ttl
        raise ValueError(f"unknown local_repair_mode {mode!r}")

    def _repair_timer_expired(self, context: RepairContext) -> None:
        if context.done or not self.store.have(context.name):
            return
        name = context.name
        mode = self.config.local_repair_mode
        two_step = (mode == "two-step"
                    and context.request_initial_ttl < DEFAULT_TTL)
        distance = self.distances.distance(context.requester)
        payload = RepairPayload(
            name=name, data=self.store.get(name), replier=self.node_id,
            answering=context.requester,
            replier_distance_to_requester=distance,
            local_step=two_step)
        self._transmit(KIND_REPAIR, payload, ttl=self._repair_ttl(context),
                       size=self.config.data_packet_size,
                       priority=self._control_priority(name),
                       group=context.reply_group,
                       scope_zone=context.request_zone)
        self.repairs_sent += 1
        context.sent_repair = True
        context.done = True
        self._observe_repair(context, payload)
        rtt = self.network.rtt(self.node_id, context.requester)
        delay = self.now - context.set_at
        ratio = delay / rtt if rtt > 0 else 0.0
        if self.adaptive is not None:
            self.adaptive.record_repair_delay(ratio)
            self.adaptive.record_repair_sent()
        self.trace("send_repair", name=name, two_step=two_step,
                   delay=delay, ratio=ratio, answering=context.requester)
        self._set_holddown(name, context.requester)

    def _observe_repair(self, context: RepairContext,
                        payload: RepairPayload) -> None:
        context.repairs_observed += 1
        if context.repairs_observed >= 2 and payload.replier != self.node_id:
            self.trace("dup_repair_observed", name=context.name,
                       replier=payload.replier)
            if self.adaptive is not None:
                own_distance = self.distances.distance(context.requester)
                self.adaptive.record_duplicate_repair(
                    we_sent=context.sent_repair,
                    replier_distance=payload.replier_distance_to_requester,
                    our_distance=own_distance)

    def _set_holddown(self, name: AduName, first_requester: Optional[int]) -> None:
        """Ignore requests for ``name`` for 3 * d(S, us) (Section III-B).

        S is the source of the first request when known, else the
        original source of the data.
        """
        anchor = first_requester if first_requester is not None else name.source
        if anchor == self.node_id:
            anchor = name.source
        distance = self.distances.distance(anchor)
        self._holddown[name] = timer_math.holddown_until(
            self.now, distance, self.config.holddown_factor)

    # ------------------------------------------------------------------
    # Handling repairs and original data
    # ------------------------------------------------------------------

    def _handle_repair(self, packet: Packet) -> None:
        payload: RepairPayload = packet.payload
        name = payload.name
        self.trace("recv_repair", name=name, replier=payload.replier,
                   answering=payload.answering)
        arrival_group = packet.dst if packet.dst != self.group else None
        repair_context = self._repairs.get(name)
        if repair_context is not None and not repair_context.done:
            if repair_context.timer.pending:
                repair_context.timer.cancel()
                repair_context.done = True
                self.repairs_cancelled += 1
                self.trace("repair_cancelled", name=name)
            self._observe_repair(repair_context, payload)
        elif repair_context is not None:
            self._observe_repair(repair_context, payload)
        self._accept_data(name, payload.data, is_repair=True,
                          first_requester=payload.answering)
        if payload.local_step and payload.answering == self.node_id:
            self._second_step_repair(name, payload, arrival_group)

    def _second_step_repair(self, name: AduName, payload: RepairPayload,
                            group: Optional[GroupAddress] = None) -> None:
        """Step two of two-step local recovery (Section VII-B3).

        The original requester, on receiving the local repair naming
        itself, re-multicasts the repair with the TTL it used for its
        original request, guaranteeing coverage of every member that saw
        the request.
        """
        request_context = self._requests.get(name)
        ttl = (request_context.request_ttl_used
               if request_context is not None else DEFAULT_TTL)
        resend = RepairPayload(name=name, data=payload.data,
                               replier=self.node_id, answering=None,
                               local_step=False)
        self._transmit(KIND_REPAIR, resend, ttl=ttl,
                       size=self.config.data_packet_size,
                       priority=self._control_priority(name),
                       group=group)
        self.repairs_sent += 1
        self.trace("send_repair_second_step", name=name, ttl=ttl)

    def _accept_data(self, name: AduName, data: Any, is_repair: bool,
                     first_requester: Optional[int] = None) -> None:
        if self.store.have(name):
            if is_repair:
                self._set_holddown(name, first_requester)
            return
        self.store.put(name, data)
        newly_missing = self.reception.mark_received(name)
        context = self._requests.get(name)
        if context is not None and not context.done:
            context.done = True
            context.timer.cancel()
            delay = self.now - context.detected_at
            rtt = self.network.rtt(self.node_id, name.source)
            ratio = delay / rtt if rtt > 0 else 0.0
            if not context.first_request_seen:
                # Recovered without ever seeing a request (e.g. reordered
                # original data or a scoped repair): close the waiting
                # period for the delay statistics.
                context.first_request_seen = True
                self.trace("first_request_event", name=name, delay=delay,
                           rtt=rtt, ratio=ratio, via="data")
                if self.adaptive is not None:
                    self.adaptive.record_request_delay(ratio)
            self.trace("data_recovered", name=name, delay=delay, rtt=rtt,
                       ratio=ratio, via="repair" if is_repair else "data")
        if is_repair:
            self._set_holddown(name, first_requester)
        self.data_received += 1
        self.trace("recv_data", name=name, repair=is_repair)
        if self.fec is not None:
            self.fec.on_data_received(name, data)
        if self.on_app_receive is not None:
            self.on_app_receive(name, data)
        for missing in newly_missing:
            self.on_loss_detected(missing)

    # ------------------------------------------------------------------
    # Page state recovery (late join / browsing history)
    # ------------------------------------------------------------------

    def request_page_state(self, page: PageId) -> None:
        """Ask the group for the sequence-number state of ``page``.

        The recovery protocol mirrors data recovery: the request timer is
        distance-randomized against the page creator, replies are
        suppressed like repairs.
        """
        if page in self._page_requests and \
                self._page_requests[page].timer.pending:
            return
        context = PageRequestContext(
            page=page, timer=Timer(self.network.scheduler, lambda: None))
        context.timer = Timer(
            self.network.scheduler,
            lambda: self._page_request_timer_expired(context),
            name=f"pagereq:{page}@{self.node_id}")
        self._page_requests[page] = context
        distance = self._distance_or_default(page.creator)
        params = self.params
        low = params.c1 * distance
        high = (params.c1 + params.c2) * distance
        context.timer.start(self.rng.uniform(low, max(high, 1e-9)))

    def _page_request_timer_expired(self, context: PageRequestContext) -> None:
        if context.done:
            return
        payload = PageRequestPayload(page=context.page,
                                     requester=self.node_id)
        self.network.send_multicast(
            self.node_id, self.group, KIND_PAGE_REQUEST, payload,
            size=self.config.control_packet_size)
        context.done = True
        self.trace("send_page_request", page=str(context.page))

    def _handle_page_request(self, payload: PageRequestPayload) -> None:
        page = payload.page
        own = self._page_requests.get(page)
        if own is not None and not own.done and not own.is_reply:
            # Another member asked first; suppress our page request.
            own.timer.cancel()
            own.done = True
            self.trace("page_request_suppressed", page=str(page))
        state = self.reception.page_state(page)
        if not state:
            return
        if own is not None and own.is_reply and own.timer.pending:
            return
        reply_context = PageRequestContext(
            page=page, timer=Timer(self.network.scheduler, lambda: None),
            is_reply=True)
        reply_context.timer = Timer(
            self.network.scheduler,
            lambda: self._page_reply_timer_expired(reply_context),
            name=f"pagerep:{page}@{self.node_id}")
        self._page_requests[page] = reply_context
        distance = self.distances.distance(payload.requester)
        params = self.params
        low = params.d1 * distance
        high = (params.d1 + params.d2) * distance
        reply_context.timer.start(self.rng.uniform(low, max(high, 1e-9)))

    def _page_reply_timer_expired(self, context: PageRequestContext) -> None:
        if context.done:
            return
        payload = PageReplyPayload(
            page=context.page, replier=self.node_id,
            page_state=self.reception.page_state(context.page))
        self.network.send_multicast(
            self.node_id, self.group, KIND_PAGE_REPLY, payload,
            size=self.config.control_packet_size)
        context.done = True
        self.trace("send_page_reply", page=str(context.page))

    def _handle_page_reply(self, payload: PageReplyPayload) -> None:
        context = self._page_requests.get(payload.page)
        if context is not None and context.timer.pending:
            # Someone else replied first: suppress our reply (and any
            # still-pending request for the same page).
            context.timer.cancel()
            context.done = True
            self.trace("page_reply_suppressed", page=str(payload.page))
        for (source, page), high_seq in payload.page_state.items():
            if source == self.node_id:
                continue
            for missing in self.reception.note_high_water(source, page,
                                                          high_seq):
                self.on_loss_detected(missing)

    # ------------------------------------------------------------------
    # Introspection helpers (tests, applications)
    # ------------------------------------------------------------------

    def pending_requests(self) -> list[AduName]:
        return sorted(name for name, ctx in self._requests.items()
                      if not ctx.done)

    def pending_repairs(self) -> list[AduName]:
        return sorted(name for name, ctx in self._repairs.items()
                      if not ctx.done and ctx.timer.pending)

    def holddown_active(self, name: AduName) -> bool:
        return self.now < self._holddown.get(name, float("-inf"))

    def reset_recovery_state(self) -> None:
        """Drop per-loss bookkeeping between experiment rounds.

        Data and reception state are kept; request/repair contexts,
        hold-downs and page-request state are discarded. Adaptive EWMAs
        persist (that is the point of Figs. 12-14).
        """
        for context in self._requests.values():
            context.timer.cancel()
        for repair_context in self._repairs.values():
            repair_context.timer.cancel()
        for page_context in self._page_requests.values():
            page_context.timer.cancel()
        self._requests.clear()
        self._repairs.clear()
        self._page_requests.clear()
        self._holddown.clear()
        self._last_repair_period_name = None
        if self.network is not None:
            # Online checkers key suppression state on (node, name); the
            # reset marker tells them this node's slate is clean.
            self.trace("recovery_reset")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SrmAgent node={self.node_id} "
                f"store={len(self.store)} "
                f"pending_req={len(self.pending_requests())}>")
