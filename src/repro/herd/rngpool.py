# lint: ignore-file[SRM001] -- this module *replays* RandomSource member
# streams from their recorded fork seeds; every random.Random here is
# seeded and deterministic (the same boundary exemption as sim/rng.py).
"""Per-member uniform draw pools, bit-identical to the agent RNG forks.

The agent engine gives every member its own :class:`RandomSource`, forked
from one master as ``master.fork(f"member-{m}")`` in membership order,
and each timer draw consumes exactly one ``random()`` output of that
member's stream (``uniform(low, high)`` is ``low + (high - low) *
random()``). For the herd to make *bit-identical* draws it must consume
the *same member's* stream at the *same position* — but holding 10^5
live ``random.Random`` instances costs ~3 KB of Mersenne state each
(hundreds of MB at mega-session scale).

:class:`DrawPools` therefore keeps, per member:

* the fork's integer seed (a few bytes),
* a prefilled ``M x depth`` float64 pool of the stream's first ``depth``
  raw ``random()`` outputs (the live ``Random`` is discarded after
  prefill), and
* a consumed-draw counter.

``take_many(idx)`` serves draws from the pool with one fancy-indexing
gather. A member that exhausts its prefix (long backoff chains, many
rounds) falls back to a lazily *replayed* ``random.Random(seed)`` that
skips the consumed prefix — recreated once, cached, and advanced in
lockstep afterwards, so overflow costs are paid only by the handful of
members that stay busy long enough to need them.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List

import numpy as np

from repro.sim.rng import RandomSource

FloatArray = Any
IntArray = Any

#: Raw uniforms prefilled per member. A figure-style round costs one
#: detection draw plus one per backoff/repair; 16 covers several rounds
#: for the entire herd before any member touches the replay path.
DEFAULT_DEPTH = 16


class DrawPools:
    """Positioned uniform streams for every herd member."""

    __slots__ = ("depth", "_seeds", "_pool", "_used", "_tails")

    def __init__(self, seeds: Iterable[int], depth: int = DEFAULT_DEPTH
                 ) -> None:
        self._seeds: List[int] = list(seeds)
        self.depth = depth
        count = len(self._seeds)
        self._pool = np.empty((count, depth), dtype=np.float64)
        for i, seed in enumerate(self._seeds):
            rng = random.Random(seed)
            self._pool[i] = [rng.random() for _ in range(depth)]
        self._used = np.zeros(count, dtype=np.int64)
        #: Lazily replayed streams for members past their prefix.
        self._tails: Dict[int, random.Random] = {}

    @classmethod
    def from_master(cls, master: RandomSource, members: Iterable[int],
                    depth: int = DEFAULT_DEPTH) -> "DrawPools":
        """Fork ``master`` exactly like the agent engine does.

        Must be called with ``members`` in the same order the agent
        engine attaches agents (membership order), consuming the same
        master draws, so member ``m``'s stream seed matches its agent's.
        """
        return cls((master.fork(f"member-{member}").seed
                    for member in members), depth=depth)

    # ------------------------------------------------------------------

    def used(self, index: int) -> int:
        return int(self._used[index])

    def take(self, index: int) -> float:
        """The next raw uniform of member ``index``'s stream."""
        position = self._used[index]
        if position < self.depth:
            value = float(self._pool[index, position])
        else:
            value = self._tail(index).random()
        self._used[index] += 1
        return value

    def take_many(self, idx: IntArray) -> FloatArray:
        """One draw per entry of ``idx`` (distinct member indices)."""
        out = np.empty(len(idx), dtype=np.float64)
        used = self._used[idx]
        fresh = used < self.depth
        if fresh.any():
            fi = idx[fresh]
            out[fresh] = self._pool[fi, used[fresh]]
        if not fresh.all():
            for k in np.flatnonzero(~fresh):
                out[k] = self._tail(int(idx[k])).random()
        self._used[idx] += 1
        return out

    def _tail(self, index: int) -> random.Random:
        """The live replayed stream of one overflowed member."""
        tail = self._tails.get(index)
        if tail is None:
            tail = random.Random(self._seeds[index])
            for _ in range(int(self._used[index])):
                tail.random()
            self._tails[index] = tail
        return tail
