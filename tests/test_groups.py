"""Unit tests for multicast group membership."""

from repro.mcast.groups import GroupManager
from repro.net.packet import GroupAddress


def test_allocate_unique_groups():
    manager = GroupManager()
    a = manager.allocate("one")
    b = manager.allocate("two")
    assert a != b
    assert manager.known_groups() == [a, b]


def test_join_and_members_sorted():
    manager = GroupManager()
    group = manager.allocate()
    for node in (5, 1, 3):
        manager.join(node, group)
    assert manager.members(group) == (1, 3, 5)
    assert manager.size(group) == 3


def test_join_is_idempotent():
    manager = GroupManager()
    group = manager.allocate()
    manager.join(1, group)
    manager.join(1, group)
    assert manager.members(group) == (1,)


def test_leave_removes_member():
    manager = GroupManager()
    group = manager.allocate()
    manager.join(1, group)
    manager.join(2, group)
    manager.leave(1, group)
    assert manager.members(group) == (2,)
    assert not manager.is_member(1, group)
    assert manager.is_member(2, group)


def test_leave_nonmember_is_noop():
    manager = GroupManager()
    group = manager.allocate()
    manager.leave(9, group)
    assert manager.members(group) == ()


def test_membership_of_unknown_group_is_empty():
    manager = GroupManager()
    stranger = GroupAddress(999)
    assert manager.members(stranger) == ()
    assert manager.size(stranger) == 0
    assert not manager.is_member(1, stranger)


def test_member_cache_invalidation():
    manager = GroupManager()
    group = manager.allocate()
    manager.join(2, group)
    assert manager.members(group) == (2,)
    manager.join(1, group)
    assert manager.members(group) == (1, 2)
    manager.leave(2, group)
    assert manager.members(group) == (1,)


def test_independent_groups():
    manager = GroupManager()
    a = manager.allocate("a")
    b = manager.allocate("b")
    manager.join(1, a)
    manager.join(2, b)
    assert manager.members(a) == (1,)
    assert manager.members(b) == (2,)
