"""Separate multicast groups for local recovery (Section VII-B2).

"The initial requestor creates a separate multicast group for local
recovery and invites other nearby members to join that multicast group.
The multicast group must include some member capable of sending repairs.
This mechanism is appropriate when there is a stable loss neighborhood
that results from a particular lossy link, or when an isolated member
joins a group late and asks for past history."

:class:`RecoveryGroup` wires that up on top of the agent-level routing
(:meth:`SrmAgent.join_recovery_group`): members invited into the group
route their requests for the covered data onto it; repliers answer on
the group the request arrived on, so recovery traffic never touches the
global session group.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.agent import SrmAgent
from repro.core.names import PageId
from repro.net.network import Network
from repro.net.packet import GroupAddress, NodeId


class RecoveryGroup:
    """One local-recovery multicast group and its membership."""

    def __init__(self, network: Network, group: GroupAddress,
                 page: Optional[PageId], source: Optional[NodeId]) -> None:
        self.network = network
        self.group = group
        self.page = page
        self.source = source
        self.members: List[SrmAgent] = []
        self.dissolved = False

    @classmethod
    def establish(cls, network: Network, initiator: SrmAgent,
                  invitees: Sequence[SrmAgent],
                  page: Optional[PageId] = None,
                  source: Optional[NodeId] = None,
                  label: str = "recovery") -> "RecoveryGroup":
        """Create a recovery group and admit the initiator + invitees.

        ``page``/``source`` scope which data the group recovers (None
        matches anything). The caller is responsible for inviting at
        least one member capable of sending repairs — exactly the
        paper's requirement.
        """
        group = network.groups.allocate(label)
        recovery = cls(network, group, page, source)
        recovery.admit(initiator)
        for agent in invitees:
            recovery.admit(agent)
        return recovery

    def admit(self, agent: SrmAgent) -> None:
        """Add a member: it joins the group and routes matching requests
        onto it."""
        if self.dissolved:
            raise RuntimeError("recovery group already dissolved")
        if agent in self.members:
            return
        agent.join_recovery_group(self.group, page=self.page,
                                  source=self.source)
        self.members.append(agent)

    def withdraw(self, agent: SrmAgent) -> None:
        if agent in self.members:
            agent.leave_recovery_group(self.group)
            self.members.remove(agent)

    def dissolve(self) -> None:
        """Tear the group down (e.g. the lossy period ended)."""
        for agent in list(self.members):
            self.withdraw(agent)
        self.dissolved = True

    def member_nodes(self) -> List[NodeId]:
        return sorted(agent.node_id for agent in self.members)

    def traffic_carried(self) -> int:
        """Packets delivered on this group so far (reach accounting)."""
        return sum(1 for row in self.network.trace.records
                   if row.kind in ("send_request", "send_repair"))


def invite_loss_neighborhood(network: Network, initiator: SrmAgent,
                             agents: Iterable[SrmAgent],
                             loss_members: Iterable[NodeId],
                             helpers: Iterable[NodeId],
                             page: Optional[PageId] = None,
                             source: Optional[NodeId] = None,
                             ) -> RecoveryGroup:
    """Convenience: establish a group over a known loss neighborhood.

    ``loss_members`` are the nodes sharing the losses; ``helpers`` are
    nearby nodes holding the data (potential repliers).
    """
    wanted = set(loss_members) | set(helpers)
    invitees = [agent for agent in agents
                if agent.node_id in wanted
                and agent.node_id != initiator.node_id]
    return RecoveryGroup.establish(network, initiator, invitees,
                                   page=page, source=source)
