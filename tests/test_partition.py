"""Tests for network partitioning (Section III-D).

"During a partition, members can continue to send data in the connected
components of the partitions. After recovery all data will still have
unique names and the repair mechanism will distribute any new state
throughout the entire group." SRM does not even distinguish a partition
from members leaving.
"""

from repro.core.config import SrmConfig
from repro.core.names import AduName, DEFAULT_PAGE
from repro.net.link import MatchDropFilter
from repro.topology.chain import chain

from conftest import build_srm_session


def partition_session(heal_at=200.0):
    config = SrmConfig(session_enabled=True, session_min_interval=10.0)
    network, agents, group = build_srm_session(chain(6), range(6),
                                               config=config)
    cut = MatchDropFilter(lambda p: True)
    network.add_drop_filter(2, 3, cut)

    def heal():
        network.link_between(2, 3).remove_filter(cut)

    network.scheduler.schedule(heal_at, heal)
    return network, agents


def test_both_sides_progress_during_partition():
    network, agents = partition_session(heal_at=10_000.0)
    network.scheduler.schedule(10.0, lambda: agents[0].send_data("left"))
    network.scheduler.schedule(10.0, lambda: agents[5].send_data("right"))
    network.run(until=150.0)
    left_name = AduName(0, DEFAULT_PAGE, 1)
    right_name = AduName(5, DEFAULT_PAGE, 1)
    for node in (0, 1, 2):
        assert agents[node].store.have(left_name)
        assert not agents[node].store.have(right_name)
    for node in (3, 4, 5):
        assert agents[node].store.have(right_name)
        assert not agents[node].store.have(left_name)


def test_state_merges_after_healing():
    """After the partition heals, session messages reveal the missing
    state and repairs distribute it across the former boundary."""
    network, agents = partition_session(heal_at=200.0)
    network.scheduler.schedule(10.0, lambda: agents[0].send_data("L1"))
    network.scheduler.schedule(20.0, lambda: agents[0].send_data("L2"))
    network.scheduler.schedule(15.0, lambda: agents[5].send_data("R1"))
    network.run(until=1500.0)
    for seq, source in ((1, 0), (2, 0), (1, 5)):
        name = AduName(source, DEFAULT_PAGE, seq)
        for node in range(6):
            assert agents[node].store.have(name), (node, name)
    # Names never collided: both sides used their own Source-IDs.
    assert agents[3].store.get(AduName(0, DEFAULT_PAGE, 1)) == "L1"
    assert agents[1].store.get(AduName(5, DEFAULT_PAGE, 1)) == "R1"


def test_rejoining_member_keeps_its_source_id():
    """A member that leaves and rejoins retains ownership of data it
    created before quitting (persistent Source-IDs, Section II-C)."""
    config = SrmConfig(session_enabled=True, session_min_interval=10.0)
    network, agents, group = build_srm_session(chain(4), range(4),
                                               config=config)
    network.scheduler.schedule(5.0, lambda: agents[3].send_data("mine"))
    network.run(until=50.0)
    agents[3].leave_group()
    network.run(until=100.0)
    agents[3].join_group(group)
    network.scheduler.schedule(101.0, lambda: agents[3].send_data("more"))
    network.run(until=400.0)
    # Its stream continued: seq 2 under the same Source-ID, no renaming.
    assert agents[0].store.have(AduName(3, DEFAULT_PAGE, 1))
    assert agents[0].store.have(AduName(3, DEFAULT_PAGE, 2))
    assert agents[0].store.get(AduName(3, DEFAULT_PAGE, 2)) == "more"
