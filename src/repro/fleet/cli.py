"""The ``repro fleet`` command: serve, work, submit, inspect.

Modes::

    repro fleet serve --port 8765 --cache-dir results/.cache
    repro fleet worker --url http://127.0.0.1:8765 --name w-a
    repro fleet submit --url ... --figure figure3 --sims 4
    repro fleet status --url ... [--job job-1]
    repro fleet workers --url ...

``submit`` runs the named figure's own sweep code against a
:class:`~repro.fleet.client.FleetRunner`, so the printed table — and
the ``--metrics`` bundle — are byte-identical to the serial
``repro <figure>`` output when the fleet behaves (that identity is the
CI fleet-smoke gate; see docs/fleet.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Optional

DEFAULT_URL = "http://127.0.0.1:8765"

#: Figures whose sweeps are pure run_experiment maps and therefore can
#: execute on the fleet, with the per-figure sweep arguments they take.
FLEET_FIGURES = ("figure3", "figure4", "figure5", "figure6", "figure7",
                 "figure8", "figure12", "figure13", "figure14",
                 "figure15")


def install_options(sub: argparse.ArgumentParser,
                    defaults: Optional[Dict[str, Any]] = None) -> None:
    sub.add_argument("mode",
                     choices=["serve", "worker", "submit", "status",
                              "workers"],
                     help="serve: run a controller; worker: run a "
                          "worker agent; submit: run a figure sweep "
                          "through a controller; status: job states; "
                          "workers: worker states")
    sub.add_argument("--url", default=DEFAULT_URL,
                     help="controller base URL (default: %(default)s)")
    # serve
    sub.add_argument("--host", default="127.0.0.1",
                     help="(serve) bind address (default: %(default)s)")
    sub.add_argument("--port", type=int, default=8765,
                     help="(serve) port, 0 = ephemeral "
                          "(default: %(default)s)")
    sub.add_argument("--cache-dir", default=None, metavar="PATH",
                     help="(serve) result cache location (default: "
                          "$SRM_CACHE_DIR or results/.cache)")
    sub.add_argument("--lease-ttl", type=float, default=None,
                     metavar="SECONDS",
                     help="(serve) lease lifetime without a heartbeat "
                          "(default: 15)")
    sub.add_argument("--retries", type=int, default=2,
                     help="(serve) per-task retry budget "
                          "(default: %(default)s)")
    # worker
    sub.add_argument("--name", default="",
                     help="(worker) display name (default: the id)")
    sub.add_argument("--poll", type=float, default=0.2,
                     metavar="SECONDS",
                     help="(worker) idle poll interval "
                          "(default: %(default)s)")
    sub.add_argument("--max-tasks", type=int, default=None,
                     help="(worker) exit after completing this many "
                          "tasks (default: run until killed)")
    sub.add_argument("--hold", type=float, default=0.0,
                     metavar="SECONDS",
                     help="(worker) pause between lease and execution; "
                          "a crash-recovery test hook")
    # submit
    sub.add_argument("--figure", default="figure3",
                     choices=list(FLEET_FIGURES),
                     help="(submit) figure sweep to run "
                          "(default: %(default)s)")
    sub.add_argument("--sims", type=int, default=20,
                     help="(submit) simulations per point "
                          "(default: %(default)s)")
    sub.add_argument("--runs", type=int, default=3,
                     help="(submit) runs, for figure12/13 "
                          "(default: %(default)s)")
    sub.add_argument("--rounds", type=int, default=60,
                     help="(submit) rounds, for figure12/13/14 "
                          "(default: %(default)s)")
    sub.add_argument("--seed", type=int, default=None,
                     help="(submit) random seed (default: the "
                          "figure's own)")
    sub.add_argument("--metrics", default=None, metavar="PATH",
                     help="(submit) write the merged metrics bundle "
                          "(JSON) here")
    sub.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="(submit) give up if the job is not done in "
                          "time (default: wait forever)")
    # status
    sub.add_argument("--job", default=None,
                     help="(status) one job id (default: all jobs)")


def run_fleet_command(args: argparse.Namespace) -> int:
    if args.mode == "serve":
        return _serve(args)
    if args.mode == "worker":
        return _worker(args)
    if args.mode == "submit":
        return _submit(args)
    if args.mode == "status":
        return _status(args)
    return _workers(args)


def _serve(args: argparse.Namespace) -> int:
    from repro.fleet.controller import DEFAULT_LEASE_TTL, serve_forever

    lease_ttl = args.lease_ttl if args.lease_ttl is not None \
        else DEFAULT_LEASE_TTL
    serve_forever(host=args.host, port=args.port,
                  cache_dir=args.cache_dir, lease_ttl=lease_ttl,
                  retries=args.retries)
    return 0


def _worker(args: argparse.Namespace) -> int:
    from repro.fleet.client import FleetError
    from repro.fleet.worker import FleetWorker

    worker = FleetWorker(args.url, name=args.name,
                         poll_interval=args.poll, hold=args.hold,
                         max_tasks=args.max_tasks)
    try:
        worker.register()
    except FleetError as exc:
        print(f"fleet worker: cannot reach controller: {exc}",
              file=sys.stderr)
        return 2
    print(f"fleet worker {worker.worker_id} "
          f"({worker.name or worker.worker_id}) polling {args.url}",
          file=sys.stderr)
    try:
        completed = worker.run()
    except KeyboardInterrupt:
        completed = worker.completed
    print(f"fleet worker {worker.worker_id}: {completed} task(s) done",
          file=sys.stderr)
    return 0


def _submit(args: argparse.Namespace) -> int:
    from repro.fleet.client import FleetError, FleetRunner

    seed = args.seed
    if seed is None:
        from repro.cli import FIGURE_SEEDS
        seed = FIGURE_SEEDS.get(args.figure, 0)
    runner = FleetRunner(args.url, timeout=args.timeout,
                         metrics_path=args.metrics)
    try:
        result = _run_figure(args.figure, runner, seed, args)
    except FleetError as exc:
        print(f"fleet submit: {exc}", file=sys.stderr)
        return 2
    if isinstance(result, tuple):
        print("\n\n".join(part.format_table() for part in result))
    else:
        print(result.format_table())
    if args.metrics:
        print(f"saved metrics bundle to {args.metrics}", file=sys.stderr)
    return 0


def _run_figure(figure: str, runner: Any, seed: int,
                args: argparse.Namespace) -> Any:
    """Run one figure sweep on the fleet runner (same code as serial)."""
    if figure in ("figure12", "figure13"):
        from repro.experiments.figure12_13 import (
            find_adversarial_scenario, run_rounds_experiment)
        return run_rounds_experiment(
            find_adversarial_scenario(), adaptive=(figure == "figure13"),
            runs=args.runs, rounds=args.rounds, seed=seed, runner=runner)
    if figure == "figure14":
        from repro.experiments.figure14 import run_figure14
        return run_figure14(sims=args.sims, rounds=args.rounds,
                            seed=seed, runner=runner)
    if figure == "figure15":
        from repro.experiments.figure15 import run_figure15
        return (run_figure15(sims=args.sims, seed=seed, runner=runner),
                run_figure15(sims=args.sims, seed=seed, mode="one-step",
                             runner=runner))
    import importlib
    module = importlib.import_module(f"repro.experiments.{figure}")
    run = getattr(module, f"run_{figure}")
    return run(sims=args.sims, seed=seed, runner=runner)


def _status(args: argparse.Namespace) -> int:
    from repro.fleet.client import FleetClient, FleetError

    client = FleetClient(args.url)
    try:
        rows = [client.status(args.job)] if args.job else client.jobs()
    except FleetError as exc:
        print(f"fleet status: {exc}", file=sys.stderr)
        return 2
    if not rows:
        print("no jobs")
        return 0
    print(f"{'job':<10} {'experiment':<12} {'state':<8} "
          f"{'done':>6} {'leased':>6} {'pending':>7} {'cached':>6}")
    for row in rows:
        counts = row["counts"]
        print(f"{row['job']:<10} {row['experiment']:<12} "
              f"{row['state']:<8} "
              f"{counts['done']:>3}/{row['tasks']:<3}"
              f"{counts['leased']:>5} {counts['pending']:>7} "
              f"{row['cached']:>6}")
        if row.get("error"):
            print(f"  error: {row['error']}")
    return 0


def _workers(args: argparse.Namespace) -> int:
    from repro.fleet.client import FleetClient, FleetError

    client = FleetClient(args.url)
    try:
        rows = client.workers()
    except FleetError as exc:
        print(f"fleet workers: {exc}", file=sys.stderr)
        return 2
    if not rows:
        print("no workers registered")
        return 0
    print(f"{'worker':<8} {'name':<16} {'state':<6} {'done':>5} "
          f"{'last seen':>10}")
    for row in rows:
        print(f"{row['worker']:<8} {row['name']:<16} {row['state']:<6} "
              f"{row['done']:>5} {row['last_seen_age']:>9}s")
    return 0
