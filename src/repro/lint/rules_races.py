"""SRM008 — tie-order-sensitive timer callbacks.

The determinism contract (docs/determinism.md) fixes *which* order
same-instant events drain in — ``(time, seq)`` — but correct SRM code
must be stronger than that: protocol behavior may not depend on the
drain order at all, or a refactor that re-seqs events (batching, wave
merging, a new scheduler backend) silently changes results. The dynamic
detector in :mod:`repro.lint.races` replays scenarios under permuted
drain orders; this rule catches the canonical static signature of the
same bug before it ever runs:

* a method is scheduled as a **timer callback** in this file, and
* its body reads **unordered mutable shared state** — an instance
  attribute assigned from a set — in an order-sensitive way
  (``for x in self.claimed``, ``next(iter(self.claimed))``,
  ``self.claimed.pop()``),
* without a deterministic sink (``sorted(...)``, ``min``/``max``,
  order-insensitive reductions).

Two same-instant callbacks that both mutate and read such state see
each other's effects in drain order; whichever fires first wins the
"first element" race. The fix is always the same: pick by a total
order (``sorted``, ``min``) instead of arrival order.

SRM002 already polices *local* set iteration; SRM008 exists because
the racing reads are on ``self.<attr>`` shared between callbacks, which
alias tracking on bare names cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.lint.rules import FileContext, Rule, register
from repro.lint.violations import Violation

#: Scheduler entry points whose callable arguments become timer
#: callbacks. Matches both ``self.scheduler.schedule(...)`` and a bare
#: ``scheduler.schedule(...)``.
_SCHEDULE_METHODS = {"schedule", "schedule_at", "schedule_many",
                     "call_later", "call_at"}

#: Wrapping one of these around the read discards arrival order.
_ORDER_INSENSITIVE_SINKS = {"sorted", "sum", "min", "max", "len",
                            "any", "all", "set", "frozenset"}

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_set_valued(node: ast.expr) -> bool:
    """True for expressions that are statically a mutable set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "set"
    return False


def _self_attr(node: ast.expr) -> Optional[str]:
    """``attr`` for a ``self.attr`` expression, else None."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


class _ClassSurface:
    """What one class definition exposes to the rule."""

    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        #: attributes assigned a mutable set anywhere in the class.
        self.set_attrs: set[str] = set()
        #: method name -> definition node.
        self.methods: dict[str, _FunctionNode] = {}
        #: methods passed as callbacks to a scheduler in this class.
        self.scheduled: set[str] = set()
        self._scan()

    def _scan(self) -> None:
        for node in ast.walk(self.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods.setdefault(node.name, node)
            elif isinstance(node, ast.Assign):
                if any(_self_attr(t) and _is_set_valued(node.value)
                       for t in node.targets):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr:
                            self.set_attrs.add(attr)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                attr = _self_attr(node.target)
                if attr and _is_set_valued(node.value):
                    self.set_attrs.add(attr)
            elif isinstance(node, ast.Call):
                callee = node.func
                if isinstance(callee, ast.Attribute) \
                        and callee.attr in _SCHEDULE_METHODS:
                    for arg in node.args:
                        name = _self_attr(arg)
                        if name:
                            self.scheduled.add(name)


@register
class TieOrderSensitiveCallbackRule(Rule):
    """SRM008: timer callbacks must not race on unordered shared state."""

    code = "SRM008"
    name = "tie-order-sensitive-callback"
    summary = ("timer callbacks must not read unordered shared sets; "
               "behavior would depend on same-instant drain order")
    domain_only = True

    def check(self, ctx: FileContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                out.extend(self._check_class(ctx, _ClassSurface(node)))
        return out

    def _check_class(self, ctx: FileContext,
                     surface: _ClassSurface) -> Iterator[Violation]:
        racy = surface.set_attrs
        if not racy or not surface.scheduled:
            return
        for name in sorted(surface.scheduled):
            method = surface.methods.get(name)
            if method is None:
                continue
            for read, attr, how in self._unordered_reads(ctx, method,
                                                         racy):
                yield self.violation(
                    ctx, read,
                    f"timer callback '{name}' {how} the unordered "
                    f"shared set 'self.{attr}'; the result depends on "
                    f"same-instant drain order — pick via sorted()/min() "
                    f"or keep a list keyed by arrival seq")

    def _unordered_reads(self, ctx: FileContext, method: _FunctionNode,
                         racy: set[str]
                         ) -> Iterator[tuple[ast.AST, str, str]]:
        for node in ast.walk(method):
            # for x in self.claimed: ...   (and comprehensions)
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                attr = _self_attr(candidate)
                if attr in racy and not self._sunk(ctx, node):
                    yield candidate, attr, "iterates"
            if not isinstance(node, ast.Call):
                continue
            # next(iter(self.claimed)) — "first element" of a set.
            if isinstance(node.func, ast.Name) and node.func.id == "iter" \
                    and node.args:
                attr = _self_attr(node.args[0])
                parent = ctx.parent(node)
                if attr in racy and isinstance(parent, ast.Call) \
                        and isinstance(parent.func, ast.Name) \
                        and parent.func.id == "next":
                    yield parent, attr, "takes the 'first' element of"
            # self.claimed.pop() — pops an arbitrary element.
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "pop" and not node.args:
                attr = _self_attr(node.func.value)
                if attr in racy:
                    yield node, attr, "pops an arbitrary element of"

    @staticmethod
    def _sunk(ctx: FileContext, node: ast.AST) -> bool:
        """True when the iteration feeds an order-insensitive sink."""
        parent = ctx.parent(node)
        return (isinstance(node, (ast.SetComp, ast.GeneratorExp))
                and isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE_SINKS)
