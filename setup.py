"""Setup shim.

The environment's setuptools lacks the ``wheel`` package needed for
PEP 517 editable installs, so this file enables the legacy
``pip install -e .`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
