"""Drawing operations.

Every drawop is an immutable value named by its SRM ADU name. "The name
always refers to the same data": to change a blue line into a red circle,
wb sends a delete for the line's name followed by a new drawop — it never
rebinds the old name (Section II-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.names import AduName


class DrawType(enum.Enum):
    """Primitive shapes wb can draw."""

    LINE = "line"
    RECTANGLE = "rectangle"
    ELLIPSE = "ellipse"
    FREEHAND = "freehand"
    TEXT = "text"


@dataclass(frozen=True)
class DrawOp:
    """Draw a shape at given coordinates.

    ``timestamp`` is the sender's drawing time, used only for sorting on
    render ("out of order drawops are sorted upon arrival according to
    their timestamps"); it is not a delivery-order requirement.
    """

    shape: DrawType
    coords: Tuple[Tuple[float, float], ...]
    color: str = "black"
    width: float = 1.0
    text: Optional[str] = None
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not self.coords:
            raise ValueError("a drawop needs at least one coordinate")
        if self.shape is DrawType.TEXT and self.text is None:
            raise ValueError("text drawops need text")


@dataclass(frozen=True)
class DeleteOp:
    """Delete an earlier drawop by name.

    Not strictly idempotent in effect ordering — it references another
    operation — so the whiteboard patches it after the fact if it arrives
    before its target.
    """

    target: AduName
    timestamp: float = 0.0


@dataclass(frozen=True)
class ClearOp:
    """Clear everything drawn on the page before ``timestamp``.

    Implemented as a drawop (idempotent given the timestamp): rendering
    ignores operations older than the latest clear.
    """

    timestamp: float = 0.0
