"""Herd-vs-agent engine benchmark: members simulated per second.

A standalone script (like ``bench_kernel.py``) that runs identical
loss-recovery rounds on the agent engine and the vectorized herd engine,
then pushes the herd alone into mega-session territory the agent engine
cannot reach in benchmark time. Results land in ``BENCH_herd.json`` so
successive PRs can compare.

Usage::

    PYTHONPATH=src python benchmarks/bench_herd.py
    PYTHONPATH=src python benchmarks/bench_herd.py --quick
    PYTHONPATH=src python benchmarks/bench_herd.py \
        --compare BENCH_herd.json --output BENCH_herd.json

The JSON schema (``bench-herd/v1``)::

    {
      "schema": "bench-herd/v1",
      "python": "3.11.7",
      "created": "...",
      "quick": false,
      "repeat": 3,
      "benches": {
        "<name>": {"wall_s": float,        # best-of-repeat, one round
                    "members": int,
                    "members_per_s": float,
                    "requests": int,        # work actually done
                    "engine": "agent"|"herd",
                    "meta": {...}},
      },
      "herd_speedup": {"<scenario>": float},  # agent wall / herd wall
      "baseline": {...}, "speedup_vs_baseline": {...}
    }

Paired benches (same scenario, same seed) do byte-identical protocol
work — the equivalence suite guarantees equal request/repair counts —
so ``herd_speedup`` is a clean engines-only comparison. The mega points
measure the herd's aggregate mode, where per-member tracing is off and
the round is pure array work.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def build_star(size: int, c2: float):
    from repro.core.config import SrmConfig
    from repro.experiments.scaling import star_scaling_scenario
    return star_scaling_scenario(size), SrmConfig(c2=c2)


def build_tree(size: int):
    from repro.core.config import SrmConfig
    from repro.experiments.scaling import tree_scaling_scenario
    return tree_scaling_scenario(size), SrmConfig()


def run_agent_round(scenario, config, seed):
    from repro.experiments.common import LossRecoverySimulation
    sim = LossRecoverySimulation(scenario, config=config, seed=seed)
    started = time.perf_counter()
    outcome = sim.run_round()
    return time.perf_counter() - started, sim, outcome


def run_herd_round(scenario, config, seed):
    from repro.herd import HerdSimulation
    sim = HerdSimulation(scenario, config=config, seed=seed)
    started = time.perf_counter()
    outcome = sim.run_round()
    return time.perf_counter() - started, sim, outcome


RUNNERS = {"agent": run_agent_round, "herd": run_herd_round}


def bench(name, engine, builder, repeat, seed=0):
    """Best-of-``repeat`` wall clock for one round (setup excluded)."""
    best = None
    requests = 0
    members = 0
    for _ in range(repeat):
        scenario, config = builder()
        wall, sim, _outcome = RUNNERS[engine](scenario, config, seed)
        requests = sim.last_round_metrics.requests
        members = scenario.session_size
        best = wall if best is None else min(best, wall)
    return {
        "wall_s": round(best, 6),
        "members": members,
        "members_per_s": round(members / best) if best else None,
        "requests": requests,
        "engine": engine,
        "meta": {"seed": seed},
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="single repetition, drop the 10^5 points")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--compare", default=None, metavar="OLD.json")
    parser.add_argument("--output",
                        default=str(REPO / "benchmarks" / "BENCH_herd.json"))
    args = parser.parse_args()
    repeat = 1 if args.quick else args.repeat

    #              name                engine   builder
    plan = [
        ("star_1000_agent", "agent", lambda: build_star(1_000, 100.0)),
        ("star_1000_herd", "herd", lambda: build_star(1_000, 100.0)),
        ("tree_2000_agent", "agent", lambda: build_tree(2_000)),
        ("tree_2000_herd", "herd", lambda: build_tree(2_000)),
        ("star_10000_herd", "herd", lambda: build_star(10_000, 1_000.0)),
        ("tree_10000_herd", "herd", lambda: build_tree(10_000)),
    ]
    if not args.quick:
        plan += [
            ("star_100000_herd", "herd",
             lambda: build_star(100_000, 10_000.0)),
            ("tree_100000_herd", "herd", lambda: build_tree(100_000)),
        ]

    benches = {}
    for name, engine, builder in plan:
        benches[name] = bench(name, engine, builder, repeat)
        row = benches[name]
        print(f"{name:>20}: {row['wall_s']:8.3f}s  "
              f"{row['members_per_s']:>10,} members/s  "
              f"requests={row['requests']}")

    # Same-scenario engine speedups (paired agent/herd benches).
    herd_speedup = {}
    for name, row in benches.items():
        if row["engine"] != "agent":
            continue
        partner = name.replace("_agent", "_herd")
        if partner in benches and benches[partner]["wall_s"]:
            assert benches[partner]["requests"] == row["requests"], \
                (name, "engines did different protocol work")
            herd_speedup[name.replace("_agent", "")] = round(
                row["wall_s"] / benches[partner]["wall_s"], 2)
    for scenario, factor in herd_speedup.items():
        print(f"{scenario:>20}: herd is {factor}x the agent engine")

    payload = {
        "schema": "bench-herd/v1",
        "python": platform.python_version(),
        "created": datetime.datetime.now().isoformat(timespec="seconds"),
        "quick": args.quick,
        "repeat": repeat,
        "benches": benches,
        "herd_speedup": herd_speedup,
    }
    if args.compare and Path(args.compare).is_file():
        old = json.loads(Path(args.compare).read_text())
        payload["baseline"] = {k: old.get(k) for k in
                               ("created", "python", "benches")}
        payload["speedup_vs_baseline"] = {
            name: round(old["benches"][name]["wall_s"] / row["wall_s"], 2)
            for name, row in benches.items()
            if name in old.get("benches", {}) and row["wall_s"]}
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
