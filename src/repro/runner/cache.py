"""Content-addressed on-disk cache for task results.

Results live under ``<root>/<first two hex chars>/<fingerprint>.pkl``;
the fingerprint (see :meth:`repro.runner.task.Task.fingerprint`) already
folds in the code-version salt, so the cache itself is dumb storage:
``get`` and ``put`` by key, atomic writes, corrupt entries dropped.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Tuple

#: Default location, relative to the working directory (the repo root for
#: ``python -m repro`` invocations). Override with ``SRM_CACHE_DIR``.
DEFAULT_CACHE_DIR = "results/.cache"


def default_cache_dir() -> str:
    from repro import env

    return env.cache_dir()


class ResultCache:
    """Pickle-per-entry store addressed by content fingerprint."""

    def __init__(self, root: str | os.PathLike = None) -> None:
        self.root = Path(root if root is not None else default_cache_dir())
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss.

        An unreadable entry (truncated write from a killed process, or a
        pickle referencing a class that no longer unpickles) counts as a
        miss and is deleted so the slot heals on the next ``put``.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Atomically persist ``value``: tmp file + rename, never partial."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
