"""Shared machinery for the paper's loss-recovery experiments.

The methodology of Section V, verbatim: build a topology; randomly choose
G session members (a source among them); randomly choose a congested link
on the shortest-path tree from the source; drop the first packet from the
source on that link; the second packet (sent one unit later) triggers gap
detection; run the request/repair algorithms until every affected member
holds the data; count requests, repairs and per-member recovery delay in
units of each member's RTT to the source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.agent import SrmAgent
from repro.core.config import SrmConfig
from repro.core.names import AduName
from repro.metrics.bundle import RunMetrics
from repro.metrics.collector import MetricsCollector
from repro.metrics.events import LossEventReport, analyze_loss_event
from repro.net.link import NthPacketDropFilter
from repro.net.network import Network
from repro.net.packet import NodeId
from repro.oracle.base import check_mode_enabled
from repro.sim.rng import RandomSource
from repro.sim.scheduler import SimScheduler
from repro.topology.spec import TopologySpec

#: Safety horizon per round; recovery in these experiments completes in a
#: few hundred units at most, and the event heap drains naturally.
ROUND_EVENT_LIMIT = 5_000_000

DropEdge = Tuple[NodeId, NodeId]


@dataclass
class Scenario:
    """One fully-specified experiment scenario."""

    spec: TopologySpec
    members: List[NodeId]
    source: NodeId
    drop_edge: DropEdge

    @property
    def session_size(self) -> int:
        return len(self.members)


def candidate_drop_edges(network: Network, source: NodeId,
                         members: Sequence[NodeId]) -> List[DropEdge]:
    """Directed source-tree edges whose loss affects at least one member.

    These are the links "on the shortest-path tree from source to the
    members of the multicast group" where a drop produces a loss event.
    """
    tree = network.source_tree(source)
    member_set = set(members) - {source}
    needed = set()
    for member in sorted(member_set):
        for parent, child in tree.path_edges(member):
            needed.add((parent, child))
    return sorted(needed)


def choose_scenario(spec: TopologySpec, session_size: int,
                    rng: RandomSource,
                    adjacent_drop: bool = False,
                    network: Optional[Network] = None) -> Scenario:
    """Randomly draw members, source and congested link for a topology.

    ``adjacent_drop=True`` restricts the congested link to one adjacent to
    the source (the paper's alternative placement).
    """
    if session_size > spec.num_nodes:
        raise ValueError("session larger than the topology")
    members = sorted(rng.sample(range(spec.num_nodes), session_size))
    source = rng.choice(members)
    if network is None:
        network = spec.build()
    edges = candidate_drop_edges(network, source, members)
    if adjacent_drop:
        adjacent = [edge for edge in edges if edge[0] == source]
        if adjacent:
            edges = adjacent
    if not edges:
        raise ValueError("no candidate congested link (single-member session?)")
    drop_edge = rng.choice(edges)
    return Scenario(spec=spec, members=members, source=source,
                    drop_edge=drop_edge)


@dataclass
class RoundOutcome:
    """The per-round metrics every figure consumes."""

    report: LossEventReport
    name: AduName
    requests: int
    repairs: int
    duplicate_requests: int
    duplicate_repairs: int
    last_member_ratio: Optional[float]
    #: Request delay (in RTT units) of the affected member closest to the
    #: source; for ties, the smallest delay among members at that distance
    #: (Section VI's definition).
    closest_request_ratio: Optional[float]
    recovered: bool


class LossRecoverySimulation:
    """A persistent session running successive single-drop rounds.

    The same network, agents and (when adaptive) timer state carry across
    rounds — exactly the setup of Figs. 12-14, and a single round of it is
    the setup of Figs. 3-8.
    """

    def __init__(self, scenario: Scenario, config: Optional[SrmConfig] = None,
                 seed: int = 0, delivery: str = "direct",
                 scheduler: Optional["SimScheduler"] = None) -> None:
        self.scenario = scenario
        self.config = config if config is not None else SrmConfig()
        self.master_rng = RandomSource(seed)
        self.network = scenario.spec.build(scheduler=scheduler,
                                           delivery=delivery)
        self.network.trace.enabled = True
        self.group = self.network.groups.allocate("session")
        self.agents: Dict[NodeId, SrmAgent] = {}
        for member in scenario.members:
            agent = SrmAgent(self.config,
                             self.master_rng.fork(f"member-{member}"))
            self.network.attach(member, agent)
            agent.join_group(self.group)
            self.agents[member] = agent
        self.source_agent = self.agents[scenario.source]
        self.rounds_run = 0
        self.collector = MetricsCollector(
            control_packet_size=self.config.control_packet_size
        ).attach(self.network.trace)
        #: RunMetrics bundle of the most recently completed round.
        self.last_round_metrics: Optional[RunMetrics] = None
        self.oracle = None
        if check_mode_enabled():
            from repro.oracle import SessionOracleSuite
            self.oracle = SessionOracleSuite.attach(self.network,
                                                    agents=self.agents)

    # ------------------------------------------------------------------

    def affected_members(self, drop_edge: Optional[DropEdge] = None
                         ) -> List[NodeId]:
        """Members below the congested link on the source's tree."""
        drop_edge = drop_edge if drop_edge is not None else \
            self.scenario.drop_edge
        tree = self.network.source_tree(self.scenario.source)
        below = tree.subtree(drop_edge[1])
        return sorted(member for member in self.scenario.members
                      if member in below and member != self.scenario.source)

    def run_round(self, drop_edge: Optional[DropEdge] = None,
                  trigger_gap: float = 1.0) -> RoundOutcome:
        """Drop one packet, run recovery to quiescence, return metrics."""
        scenario = self.scenario
        drop_edge = drop_edge if drop_edge is not None else scenario.drop_edge
        network = self.network
        network.trace.clear()
        self.collector.begin_round()
        network.clear_drop_filters()
        for agent in self.agents.values():
            agent.reset_recovery_state()
        if self.oracle is not None:
            self.oracle.reset()
        source = scenario.source
        drop_filter = NthPacketDropFilter(
            lambda packet: (packet.kind == "srm-data"
                            and packet.origin == source))
        network.add_drop_filter(drop_edge[0], drop_edge[1], drop_filter)

        sent: List[AduName] = []

        def send_dropped() -> None:
            sent.append(self.source_agent.send_data(
                f"round-{self.rounds_run}-payload"))

        def send_trigger() -> None:
            self.source_agent.send_data(f"round-{self.rounds_run}-trigger")

        scheduler = network.scheduler
        scheduler.schedule(0.0, send_dropped)
        scheduler.schedule(trigger_gap, send_trigger)
        scheduler.run(max_events=ROUND_EVENT_LIMIT)
        self.rounds_run += 1
        if self.oracle is not None:
            # Raises OracleViolationError with trace excerpts on any
            # invariant break observed this round.
            self.oracle.verify(context=f"round {self.rounds_run}")

        name = sent[0]
        report = analyze_loss_event(network.trace, name)
        if self.oracle is not None:
            # Same gate as the protocol oracles: the streaming metrics
            # aggregation must match a full offline pass over the trace.
            self.collector.verify(network.trace)
        self.last_round_metrics = self.collector.snapshot(rounds=1)
        return self._outcome(report, name)

    def _outcome(self, report: LossEventReport,
                 name: AduName) -> RoundOutcome:
        recovered = all(self.agents[member].store.have(name)
                        for member in self.scenario.members)
        return RoundOutcome(
            report=report,
            name=name,
            requests=report.requests,
            repairs=report.repairs,
            duplicate_requests=report.duplicate_requests,
            duplicate_repairs=report.duplicate_repairs,
            last_member_ratio=report.last_member_recovery_ratio(),
            closest_request_ratio=self._closest_request_ratio(report),
            recovered=recovered)

    def _closest_request_ratio(self,
                               report: LossEventReport) -> Optional[float]:
        if not report.request_waits:
            return None
        tree = self.network.source_tree(self.scenario.source)
        closest_distance = min(tree.dist[member]
                               for member in report.request_waits)
        at_minimum = [timing for member, timing in
                      report.request_waits.items()
                      if tree.dist[member] == closest_distance]
        return min(timing.ratio for timing in at_minimum)



@dataclass
class ExperimentSpec:
    """One declarative unit of experiment work: what to run, fully.

    This is the single currency every figure trades in: a scenario
    (topology + membership + congested link), an :class:`SrmConfig`, a
    round count, a seed and a delivery engine. A spec is pure picklable
    data — it travels to runner workers, fingerprints into the result
    cache, and executes anywhere via :func:`run_experiment`.

    ``kind="recovery"`` (the default) runs the loss-recovery simulation;
    ``kind="scoped"`` evaluates the analytic TTL-scoped recovery of
    Fig. 15 (``scoped_mode`` chooses one-step vs two-step repairs), which
    has no simulated rounds and therefore no metrics bundle.
    """

    scenario: Scenario
    config: Optional[SrmConfig] = None
    rounds: int = 1
    seed: int = 0
    engine: str = "direct"
    experiment: str = ""
    kind: str = "recovery"       # "recovery" | "scoped"
    scoped_mode: Optional[str] = None
    trigger_gap: float = 1.0

    # -- spec/v1 wire contract (see repro.fleet.wire) ------------------
    # The frozen, versioned JSON encoding used by every fleet HTTP
    # payload and by the runner's cache-key fingerprint (Task.canonical
    # prefers to_wire() over generic dataclass walking).

    def to_wire(self) -> Dict[str, Any]:
        from repro.fleet.wire import spec_to_wire

        return spec_to_wire(self)

    def to_json(self) -> str:
        from repro.fleet.wire import spec_to_json

        return spec_to_json(self)

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "ExperimentSpec":
        from repro.fleet.wire import spec_from_wire

        return spec_from_wire(payload)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        from repro.fleet.wire import spec_from_json

        return spec_from_json(text)


@dataclass
class RunResult:
    """What one executed :class:`ExperimentSpec` produced.

    ``outcomes`` holds every round's :class:`RoundOutcome` in order;
    ``metrics`` is the merged :class:`~repro.metrics.bundle.RunMetrics`
    over those rounds (None for analytic kinds); ``artifacts`` carries
    anything kind-specific (the scoped-recovery evaluation, for one).
    """

    spec: ExperimentSpec
    outcomes: List[RoundOutcome] = field(default_factory=list)
    metrics: Optional[RunMetrics] = None
    artifacts: Dict[str, Any] = field(default_factory=dict)

    @property
    def outcome(self) -> RoundOutcome:
        """The final round (the only round, for the one-shot figures)."""
        return self.outcomes[-1]

    # -- spec/v1 wire contract (see repro.fleet.wire) ------------------

    def to_wire(self) -> Dict[str, Any]:
        from repro.fleet.wire import result_to_wire

        return result_to_wire(self)

    def to_json(self) -> str:
        from repro.fleet.wire import result_to_json

        return result_to_json(self)

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "RunResult":
        from repro.fleet.wire import result_from_wire

        return result_from_wire(payload)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        from repro.fleet.wire import result_from_json

        return result_from_json(text)


def run_experiment(spec: ExperimentSpec) -> RunResult:
    """Execute one spec: the sole entry point every figure runs through."""
    if spec.kind == "scoped":
        return _run_scoped(spec)
    if spec.kind != "recovery":
        raise ValueError(f"unknown experiment kind {spec.kind!r}")
    simulation: Any
    if spec.engine == "herd":
        # The vectorized mega-session engine; duck-types the agent
        # simulation (same run_round/last_round_metrics/config surface).
        # Imported lazily: repro.herd imports this module.
        from repro.herd import HerdSimulation
        simulation = HerdSimulation(spec.scenario, config=spec.config,
                                    seed=spec.seed)
    else:
        simulation = LossRecoverySimulation(
            spec.scenario, config=spec.config, seed=spec.seed,
            delivery=spec.engine)
    outcomes: List[RoundOutcome] = []
    bundles: List[Optional[RunMetrics]] = []
    for _ in range(spec.rounds):
        outcomes.append(simulation.run_round(trigger_gap=spec.trigger_gap))
        bundles.append(simulation.last_round_metrics)
    metrics = RunMetrics.merged(bundles, experiment=spec.experiment)
    metrics.meta.update({
        "seed": spec.seed,
        "engine": spec.engine,
        "session_size": spec.scenario.session_size,
        "adaptive": simulation.config.adaptive,
    })
    return RunResult(spec=spec, outcomes=outcomes, metrics=metrics)


def _run_scoped(spec: ExperimentSpec) -> RunResult:
    from repro.core.local import ideal_scoped_recovery

    scenario = spec.scenario
    network = scenario.spec.build()
    evaluation = ideal_scoped_recovery(
        network, scenario.source, scenario.drop_edge[0],
        scenario.drop_edge[1], scenario.members,
        mode=spec.scoped_mode or "two-step")
    return RunResult(spec=spec, artifacts={"scoped": evaluation})


def run_single_round(scenario: Scenario, config: Optional[SrmConfig] = None,
                     seed: int = 0) -> RoundOutcome:
    """Convenience for the one-round figures (3-8)."""
    return run_experiment(ExperimentSpec(
        scenario=scenario, config=config, seed=seed)).outcome


def run_rounds(scenario: Scenario, config: Optional[SrmConfig] = None,
               rounds: int = 20, seed: int = 0) -> List[RoundOutcome]:
    """Repeated independent rounds on one persistent session.

    With fixed (non-adaptive) timer parameters, successive rounds differ
    only in their random timer draws, so N rounds on one session are
    statistically equivalent to N one-round simulations — but reuse the
    topology, routing caches and agents, which is much faster.
    """
    return run_experiment(ExperimentSpec(
        scenario=scenario, config=config, rounds=rounds, seed=seed)).outcomes


@dataclass
class SeriesPoint:
    """One x-axis point aggregated over many simulations."""

    x: float
    values: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, metric: str, value: Optional[float]) -> None:
        if value is None:
            return
        self.values.setdefault(metric, []).append(value)

    def series(self, metric: str) -> List[float]:
        return self.values.get(metric, [])


def format_quartile_table(points: List[SeriesPoint], metric: str,
                          x_label: str, title: str) -> str:
    """Render one median/quartile series the way the paper plots it."""
    from repro.core.stats import quantiles

    lines = [title, f"{x_label:>10}  {'q1':>8} {'median':>8} {'q3':>8} "
                    f"{'mean':>8}  n"]
    for point in points:
        values = point.series(metric)
        if not values:
            continue
        q1, median, q3 = quantiles(values)
        mean_value = sum(values) / len(values)
        lines.append(f"{point.x:>10.3g}  {q1:>8.3f} {median:>8.3f} "
                     f"{q3:>8.3f} {mean_value:>8.3f}  {len(values)}")
    return "\n".join(lines)
